//! The unified scheduling API: pick a [`Schedule`], call [`par_for`] (or
//! [`par_for_chunks`] when the body wants whole chunks).
//!
//! All schedulers are generic over the body type: [`par_for_chunks`] is
//! the primitive, and [`par_for`] layers a per-index loop over each chunk,
//! so iteration bodies still compile to tight monomorphized loops. The
//! dyn-dispatch path survives only as [`par_for_dyn`], a compatibility
//! wrapper with the *same* chunk decomposition (one virtual call per
//! iteration — the overhead the chunk layer exists to kill).

use std::ops::Range;
use std::panic::resume_unwind;
use std::time::Instant;

use parloop_runtime::chaos::chaos_spin;
use parloop_runtime::{
    current_worker_index, CancelToken, Cancelled, FaultAction, Site, ThreadPool, TraceEvent,
    WorkerToken,
};

use crate::adapt::{AdaptiveSite, LoopSignals};
use crate::affinity::AffinityProbe;
use crate::hybrid::{
    hybrid_for, hybrid_for_oversub_policy, try_hybrid_for_oversub, HybridError, HybridStats,
};
use crate::lazy::SplitPolicy;
use crate::range::default_grain;
use crate::sharing::{sharing_for, static_sharing_for, SharingPolicy};
use crate::static_part::static_for;
use crate::stealing::{ws_for_chunks_policy, ws_for_chunks_policy_counted};

/// A loop-scheduling policy — one per platform/scheme the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// OpenMP `schedule(static)`: `P` fixed blocks, block `w` on worker `w`.
    Static,
    /// OpenMP `schedule(static, chunk)`: fixed chunks dealt round-robin —
    /// deterministic (affinity-retaining) but interleaved, which spreads
    /// monotonic imbalance.
    StaticCyclic { chunk: usize },
    /// FastFlow static: fixed blocks claimed through a shared counter.
    StaticSharing,
    /// Cilk `cilk_for` ("vanilla"): divide-and-conquer with work stealing.
    /// `grain = None` uses the Cilk default `min(2048, N/8P)`.
    DynamicStealing { grain: Option<usize> },
    /// OpenMP `schedule(dynamic, chunk)` / FastFlow dynamic: fixed chunks
    /// from a shared cursor.
    WorkSharing { chunk: usize },
    /// OpenMP `schedule(guided, min_chunk)`: decreasing chunks
    /// `max(remaining/P, min_chunk)` from a shared cursor.
    Guided { min_chunk: usize },
    /// The paper's hybrid scheme: static earmarking + XOR claim heuristic +
    /// work stealing. `grain = None` uses the Cilk default for the inner
    /// per-partition loops; `oversub` multiplies the partition count
    /// (`R = next_pow2(P · oversub)` — Theorem 5's general `R`; the
    /// paper's default is 1).
    Hybrid { grain: Option<usize>, oversub: usize },
}

impl Schedule {
    /// The paper's `omp_static` configuration.
    pub fn omp_static() -> Self {
        Schedule::Static
    }

    /// OpenMP `schedule(static, chunk)` (cyclic distribution).
    pub fn omp_static_chunked(chunk: usize) -> Self {
        Schedule::StaticCyclic { chunk }
    }

    /// The paper's `omp_dynamic` configuration with an adjusted chunk
    /// (`min(2048, N/8P)` is applied by the caller; pass it here).
    pub fn omp_dynamic(chunk: usize) -> Self {
        Schedule::WorkSharing { chunk }
    }

    /// The paper's `omp_guided` configuration.
    pub fn omp_guided() -> Self {
        Schedule::Guided { min_chunk: 1 }
    }

    /// FastFlow with static partitioning.
    pub fn ff_static() -> Self {
        Schedule::StaticSharing
    }

    /// FastFlow with dynamic partitioning and an adjusted chunk.
    pub fn ff_dynamic(chunk: usize) -> Self {
        Schedule::WorkSharing { chunk }
    }

    /// The paper's `vanilla` configuration (Cilk Plus work stealing).
    pub fn vanilla() -> Self {
        Schedule::DynamicStealing { grain: None }
    }

    /// The paper's `hybrid` configuration (`R = next_pow2(P)`).
    pub fn hybrid() -> Self {
        Schedule::Hybrid { grain: None, oversub: 1 }
    }

    /// The hybrid scheme with `R = next_pow2(P · factor)` partitions —
    /// finer static pieces for better late-phase balancing at `O(R lg R)`
    /// claim cost (the A3 ablation).
    pub fn hybrid_oversub(factor: usize) -> Self {
        Schedule::Hybrid { grain: None, oversub: factor.max(1) }
    }

    /// Short name used in tables and plots.
    pub fn name(&self) -> &'static str {
        match self {
            Schedule::Static => "omp_static",
            Schedule::StaticCyclic { .. } => "omp_static_c",
            Schedule::StaticSharing => "ff_static",
            Schedule::DynamicStealing { .. } => "vanilla",
            Schedule::WorkSharing { .. } => "omp_dynamic",
            Schedule::Guided { .. } => "omp_guided",
            Schedule::Hybrid { .. } => "hybrid",
        }
    }

    /// The roster of schemes the paper's microbenchmark figures compare,
    /// with the paper's chunk-size adjustment (`min(2048, N/8P)`) applied
    /// to the chunked schemes.
    pub fn roster(n: usize, p: usize) -> Vec<Schedule> {
        let chunk = default_grain(n, p);
        vec![
            Schedule::hybrid(),
            Schedule::omp_static(),
            Schedule::omp_dynamic(chunk),
            Schedule::omp_guided(),
            Schedule::vanilla(),
            Schedule::ff_static(),
        ]
    }
}

impl std::str::FromStr for Schedule {
    type Err = String;

    /// Parse a scheme by its paper name (`hybrid`, `omp_static`,
    /// `omp_dynamic`, `omp_guided`, `vanilla`, `ff_static`,
    /// `omp_static_c`); chunked schemes get sensible defaults
    /// (override with the typed constructors).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "hybrid" => Ok(Schedule::hybrid()),
            "omp_static" | "static" => Ok(Schedule::omp_static()),
            "omp_dynamic" | "dynamic" => Ok(Schedule::omp_dynamic(64)),
            "omp_guided" | "guided" => Ok(Schedule::omp_guided()),
            "vanilla" | "cilk" => Ok(Schedule::vanilla()),
            "ff_static" | "ff" => Ok(Schedule::ff_static()),
            "omp_static_c" | "static_cyclic" => Ok(Schedule::omp_static_chunked(64)),
            other => Err(format!(
                "unknown schedule '{other}' (expected one of: hybrid, omp_static, \
                 omp_dynamic, omp_guided, vanilla, ff_static, omp_static_c)"
            )),
        }
    }
}

/// Execute `body(i)` for each `i` in `range` under `sched` on `pool`,
/// blocking until the loop completes. Panics in `body` are re-thrown.
///
/// ```
/// use parloop_core::{par_for, Schedule};
/// use parloop_runtime::ThreadPool;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let pool = ThreadPool::new(4);
/// let sum = AtomicU64::new(0);
/// par_for(&pool, 0..1000, Schedule::hybrid(), |i| {
///     sum.fetch_add(i as u64, Ordering::Relaxed);
/// });
/// assert_eq!(sum.load(Ordering::Relaxed), 499_500);
/// ```
pub fn par_for<F>(pool: &ThreadPool, range: Range<usize>, sched: Schedule, body: F)
where
    F: Fn(usize) + Sync,
{
    par_for_chunks(pool, range, sched, move |chunk: Range<usize>| {
        for i in chunk {
            body(i);
        }
    });
}

/// Execute `body(chunk)` for each scheduler-chosen chunk of `range` under
/// `sched` on `pool`. This is the primitive the per-index [`par_for`] is
/// built on: the body is monomorphized through every scheduler, so a
/// regular chunk body compiles to a tight loop with no per-iteration
/// dispatch. Chunks are non-empty, disjoint, and tile `range`.
///
/// ```
/// use parloop_core::{par_for_chunks, Schedule};
/// use parloop_runtime::ThreadPool;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let pool = ThreadPool::new(4);
/// let sum = AtomicU64::new(0);
/// par_for_chunks(&pool, 0..1000, Schedule::hybrid(), |chunk| {
///     let partial: u64 = chunk.map(|i| i as u64).sum();
///     sum.fetch_add(partial, Ordering::Relaxed);
/// });
/// assert_eq!(sum.load(Ordering::Relaxed), 499_500);
/// ```
pub fn par_for_chunks<F>(pool: &ThreadPool, range: Range<usize>, sched: Schedule, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    par_for_chunks_policy(pool, range, sched, SplitPolicy::default(), body);
}

/// [`par_for_chunks`] with an explicit [`SplitPolicy`] for the
/// work-stealing inner engine. Only [`Schedule::DynamicStealing`] and
/// [`Schedule::Hybrid`] consult the policy (they are the schemes built on
/// the stealable splitter); the shared-cursor and static schemes ignore
/// it. This is the A/B entry point `split_bench` drives.
pub fn par_for_chunks_policy<F>(
    pool: &ThreadPool,
    range: Range<usize>,
    sched: Schedule,
    policy: SplitPolicy,
    body: F,
) where
    F: Fn(Range<usize>) + Sync,
{
    let n = range.len();
    // The Cilk default grain is derived from the *pool's* worker count
    // (`min(2048, N/8P)`), never the host's CPU count — the docs and the
    // grain-pinning test below rely on exactly this wiring.
    let p = pool.num_workers();
    match sched {
        Schedule::Static => static_for(pool, range, &body),
        Schedule::StaticCyclic { chunk } => {
            crate::static_part::static_cyclic_for(pool, range, chunk, &body)
        }
        Schedule::StaticSharing => static_sharing_for(pool, range, &body),
        Schedule::WorkSharing { chunk } => {
            sharing_for(pool, range, SharingPolicy::Fixed(chunk), &body)
        }
        Schedule::Guided { min_chunk } => {
            sharing_for(pool, range, SharingPolicy::Guided { min_chunk }, &body)
        }
        Schedule::DynamicStealing { grain } => {
            let grain = grain.unwrap_or_else(|| default_grain(n, p));
            pool.install(|| ws_for_chunks_policy(range, grain, policy, &body));
        }
        Schedule::Hybrid { grain, oversub } => {
            let grain = grain.unwrap_or_else(|| default_grain(n, p));
            pool.install(|| {
                let token = WorkerToken::current().expect("install puts us on a worker");
                hybrid_for_oversub_policy(token, range, grain, oversub, policy, &body);
            });
        }
    }
}

/// How a loop's grain (and, for the hybrid scheme, its oversubscription
/// factor `R`) is chosen — the third policy knob after [`SplitPolicy`]
/// and the runtime's `StealPolicy`.
#[derive(Debug, Clone, Copy, Default)]
pub enum GrainPolicy<'a> {
    /// The schedule's own grain: an explicit pin if the [`Schedule`]
    /// carries one, else the static Cilk rule ([`default_grain`]).
    #[default]
    Static,
    /// Feedback-driven: the [`AdaptiveSite`] supplies the grain/R before
    /// the loop and ingests its signals afterwards (see [`crate::adapt`]).
    Adaptive(&'a AdaptiveSite),
}

/// [`par_for_chunks_policy`] with an explicit [`GrainPolicy`] — the entry
/// point for the adaptive grain controller, mirroring how the
/// [`SplitPolicy`] A/B knob was introduced.
///
/// Under [`GrainPolicy::Static`] this is exactly
/// [`par_for_chunks_policy`]. Under [`GrainPolicy::Adaptive`] the site's
/// current operating point overrides the schedule's grain (and, for
/// [`Schedule::Hybrid`], its `oversub`); on measured loops the wall time
/// and the engine's per-loop contention counters are fed back through
/// [`AdaptiveSite::record`], gated by the `Site::GrainAdjust` chaos site
/// (an injected `Fail` drops the sample, a `Delay` stalls the recording
/// thread — user iterations are never at risk). Accepted adjustments are
/// counted in `PoolStats::grain_adjustments` and emitted as
/// `TraceEvent::GrainAdjusted` events.
pub fn par_for_chunks_grain_policy<F>(
    pool: &ThreadPool,
    range: Range<usize>,
    sched: Schedule,
    split: SplitPolicy,
    grain: GrainPolicy<'_>,
    body: F,
) where
    F: Fn(Range<usize>) + Sync,
{
    match grain {
        GrainPolicy::Static => par_for_chunks_policy(pool, range, sched, split, body),
        GrainPolicy::Adaptive(site) => adaptive_for_chunks(pool, range, sched, split, site, &body),
    }
}

/// The adaptive execution path: snapshot the site, run the loop under its
/// operating point, feed the signals back.
fn adaptive_for_chunks<F>(
    pool: &ThreadPool,
    range: Range<usize>,
    sched: Schedule,
    split: SplitPolicy,
    site: &AdaptiveSite,
    body: &F,
) where
    F: Fn(Range<usize>) + Sync,
{
    let n = range.len();
    if n == 0 {
        return;
    }
    let p = pool.num_workers();
    let start = site.begin(n, p);
    // Timestamps only on measured loops: in the settled steady state 15
    // of 16 loops skip both `Instant::now` calls entirely.
    let t0 = start.measure.then(Instant::now);
    let (assist_joins, failed_claims, r_parts) = match sched {
        Schedule::DynamicStealing { .. } => {
            let assists =
                pool.install(|| ws_for_chunks_policy_counted(range, start.grain, split, body));
            (assists, 0, 1)
        }
        Schedule::Hybrid { .. } => {
            let stats = pool.install(|| {
                let token = WorkerToken::current().expect("install puts us on a worker");
                hybrid_for_oversub_policy(token, range, start.grain, start.oversub, split, body)
            });
            (stats.assist_joins, stats.failed_claims, stats.partitions)
        }
        // The shared-cursor and static schemes take the grain as their
        // chunk knob; they have no assist/claim machinery to observe, so
        // only wall time drives their controller.
        other => {
            par_for_chunks_with_grain(pool, range, other, start.grain, body);
            (0, 0, 1)
        }
    };
    let Some(t0) = t0 else { return };
    let wall_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    // Chaos: perturb the *controller*, never the loop. `Fail` drops this
    // sample on the floor (convergence must survive missing
    // observations); `Delay` stalls the recording thread so concurrent
    // loops race their CAS. Panic/Kill are already demoted to Fail by
    // the external-decision path.
    match pool.chaos_decide_external(Site::GrainAdjust) {
        FaultAction::Fail | FaultAction::Panic | FaultAction::Kill => return,
        FaultAction::Delay(spins) => chaos_spin(spins),
        FaultAction::None => {}
    }
    let sig = LoopSignals { n, workers: p, wall_ns, assist_joins, failed_claims, r_parts };
    if let Some(adj) = site.record(&start, &sig) {
        pool.note_grain_adjustment();
        pool.trace_external(TraceEvent::GrainAdjusted {
            site: site.id(),
            grain: u32::try_from(adj.grain).unwrap_or(u32::MAX),
            r: u32::try_from(adj.oversub).unwrap_or(u32::MAX),
        });
    }
}

/// [`par_for_chunks`] with an explicit grain hint, overriding the derived
/// `min(2048, N/8P)` default. `default_grain` only sees the iteration
/// *count*, never the body's weight — a caller that knows each iteration
/// is heavy (or trivially light) can hint a smaller (or larger) chunk
/// here. Groundwork for the adaptive grain controller (ROADMAP item 3).
///
/// The hint maps onto each scheme's own granularity knob: the splitter
/// grain for [`Schedule::DynamicStealing`] / [`Schedule::Hybrid`], the
/// fixed chunk for [`Schedule::WorkSharing`] / [`Schedule::StaticCyclic`],
/// and the minimum chunk for [`Schedule::Guided`]. The block-partitioned
/// schemes ([`Schedule::Static`], [`Schedule::StaticSharing`]) have no
/// chunk parameter and ignore it. A hint of `0` is clamped to `1`.
///
/// ```
/// use parloop_core::{par_for_chunks_with_grain, Schedule};
/// use parloop_runtime::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ThreadPool::new(4);
/// // default_grain(16384, 4) would be 512; hint 64 instead.
/// let max_len = AtomicUsize::new(0);
/// let total = AtomicUsize::new(0);
/// par_for_chunks_with_grain(&pool, 0..16384, Schedule::vanilla(), 64, |chunk| {
///     max_len.fetch_max(chunk.len(), Ordering::Relaxed);
///     total.fetch_add(chunk.len(), Ordering::Relaxed);
/// });
/// assert_eq!(total.load(Ordering::Relaxed), 16384);
/// // The largest chunk the splitter hands out is exactly the hint.
/// assert_eq!(max_len.load(Ordering::Relaxed), 64);
/// ```
pub fn par_for_chunks_with_grain<F>(
    pool: &ThreadPool,
    range: Range<usize>,
    sched: Schedule,
    grain_hint: usize,
    body: F,
) where
    F: Fn(Range<usize>) + Sync,
{
    let hint = grain_hint.max(1);
    let sched = match sched {
        Schedule::DynamicStealing { .. } => Schedule::DynamicStealing { grain: Some(hint) },
        Schedule::Hybrid { oversub, .. } => Schedule::Hybrid { grain: Some(hint), oversub },
        Schedule::WorkSharing { .. } => Schedule::WorkSharing { chunk: hint },
        Schedule::Guided { .. } => Schedule::Guided { min_chunk: hint },
        Schedule::StaticCyclic { .. } => Schedule::StaticCyclic { chunk: hint },
        // Block-partitioned schemes have no chunk knob; the hint is moot.
        keep @ (Schedule::Static | Schedule::StaticSharing) => keep,
    };
    par_for_chunks(pool, range, sched, body);
}

/// Dyn-compatible [`par_for`]: the body is a trait object, so every
/// iteration pays one virtual call. Decomposes `range` into exactly the
/// same chunks as the generic path (it runs through [`par_for_chunks`]),
/// which makes it the baseline the overhead harness compares against and
/// keeps worker↔iteration placement identical to [`par_for`].
pub fn par_for_dyn(
    pool: &ThreadPool,
    range: Range<usize>,
    sched: Schedule,
    body: &(dyn Fn(usize) + Sync),
) {
    par_for_chunks(pool, range, sched, move |chunk: Range<usize>| {
        for i in chunk {
            body(i);
        }
    });
}

/// Like [`par_for`], but records which worker executed each iteration into
/// `probe` (used for the Figure 2 affinity experiments).
///
/// Ownership is recorded per *chunk*: one worker-index lookup and one
/// probe write-range per scheduler chunk, instead of per iteration.
pub fn par_for_tracked<F>(
    pool: &ThreadPool,
    range: Range<usize>,
    sched: Schedule,
    probe: &AffinityProbe,
    body: F,
) where
    F: Fn(usize) + Sync,
{
    par_for_chunks(pool, range, sched, move |chunk: Range<usize>| {
        if let Some(w) = current_worker_index() {
            probe.record_range(chunk.clone(), w);
        }
        for i in chunk {
            body(i);
        }
    });
}

/// Cancellable [`par_for_chunks`]: stops scheduling new chunk bodies once
/// `cancel` fires and returns `Err(Cancelled)`.
///
/// Chunks whose body already started (or finished) before the token was
/// observed are *not* rolled back — exactly-once execution is preserved
/// for everything that ran; cancellation only prevents *future* bodies.
/// Under [`Schedule::Hybrid`] this is the deep integration (cancelled
/// walkers drain the claim table so the loop's latch still resolves); the
/// other schedules gate each chunk on the token cooperatively. Panics in
/// the body are re-thrown, exactly as in [`par_for_chunks`].
pub fn try_par_for_chunks<F>(
    pool: &ThreadPool,
    range: Range<usize>,
    sched: Schedule,
    cancel: &CancelToken,
    body: F,
) -> Result<(), Cancelled>
where
    F: Fn(Range<usize>) + Sync,
{
    if cancel.is_cancelled() {
        return Err(Cancelled);
    }
    match sched {
        Schedule::Hybrid { grain, oversub } => {
            let n = range.len();
            let p = pool.num_workers();
            let grain = grain.unwrap_or_else(|| default_grain(n, p));
            let res = pool.install(|| {
                let token = WorkerToken::current().expect("install puts us on a worker");
                try_hybrid_for_oversub(token, range, grain, oversub, cancel, &body)
            });
            match res {
                Ok(_) => Ok(()),
                Err(HybridError::Cancelled(_)) => Err(Cancelled),
                Err(HybridError::Panicked { payload, .. }) => resume_unwind(payload),
            }
        }
        other => {
            par_for_chunks(pool, range, other, |chunk: Range<usize>| {
                if !cancel.is_cancelled() {
                    body(chunk);
                }
            });
            if cancel.is_cancelled() {
                Err(Cancelled)
            } else {
                Ok(())
            }
        }
    }
}

/// Cancellable, fallible hybrid loop: like [`hybrid_for_with_stats`] but
/// panics come back as [`HybridError::Panicked`] (payload included) and a
/// fired `cancel` token yields [`HybridError::Cancelled`] — both carrying
/// the scheduling counters, so skipped partitions stay observable.
pub fn try_hybrid_for<F>(
    pool: &ThreadPool,
    range: Range<usize>,
    grain: Option<usize>,
    cancel: &CancelToken,
    body: F,
) -> Result<HybridStats, HybridError>
where
    F: Fn(usize) + Sync,
{
    let n = range.len();
    let p = pool.num_workers();
    let grain = grain.unwrap_or_else(|| default_grain(n, p));
    pool.install(|| {
        let token = WorkerToken::current().expect("install puts us on a worker");
        try_hybrid_for_oversub(token, range, grain, 1, cancel, &|chunk: Range<usize>| {
            for i in chunk {
                body(i);
            }
        })
    })
}

/// Run a hybrid loop and return its scheduling counters (tests, benches).
pub fn hybrid_for_with_stats<F>(
    pool: &ThreadPool,
    range: Range<usize>,
    grain: Option<usize>,
    body: F,
) -> HybridStats
where
    F: Fn(usize) + Sync,
{
    let n = range.len();
    let p = pool.num_workers();
    let grain = grain.unwrap_or_else(|| default_grain(n, p));
    pool.install(|| {
        let token = WorkerToken::current().expect("install puts us on a worker");
        hybrid_for(token, range, grain, &|chunk: Range<usize>| {
            for i in chunk {
                body(i);
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn all_schedules(n: usize, p: usize) -> Vec<Schedule> {
        Schedule::roster(n, p)
    }

    #[test]
    fn every_schedule_covers_exactly_once() {
        let n = 2000;
        for p in [1usize, 2, 4] {
            let pool = ThreadPool::new(p);
            for sched in all_schedules(n, p) {
                let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                par_for(&pool, 0..n, sched, |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                for (i, h) in hits.iter().enumerate() {
                    assert_eq!(
                        h.load(Ordering::Relaxed),
                        1,
                        "{} P={p}: iteration {i}",
                        sched.name()
                    );
                }
            }
        }
    }

    #[test]
    fn schedules_compute_identical_reductions() {
        let n = 1234;
        let pool = ThreadPool::new(3);
        let expect: usize = (0..n).map(|i| i * i).sum();
        for sched in all_schedules(n, 3) {
            let sum = AtomicUsize::new(0);
            par_for(&pool, 0..n, sched, |i| {
                sum.fetch_add(i * i, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), expect, "{}", sched.name());
        }
    }

    #[test]
    fn tracked_records_owners() {
        let pool = ThreadPool::new(2);
        let probe = AffinityProbe::new(0..100);
        par_for_tracked(&pool, 0..100, Schedule::hybrid(), &probe, |_| {});
        let snap = probe.snapshot();
        assert!(snap.iter().all(|&w| w != crate::affinity::UNRECORDED));
        assert!(snap.iter().all(|&w| (w as usize) < 2));
    }

    #[test]
    fn static_tracked_matches_static_owner() {
        let pool = ThreadPool::new(4);
        let n = 64;
        let probe = AffinityProbe::new(0..n);
        par_for_tracked(&pool, 0..n, Schedule::Static, &probe, |_| {});
        for i in 0..n {
            assert_eq!(probe.owner(i), Some(crate::static_part::static_owner(n, 4, i)));
        }
    }

    #[test]
    fn hybrid_stats_reported() {
        let pool = ThreadPool::new(4);
        let s = hybrid_for_with_stats(&pool, 0..1000, None, |_| {});
        assert_eq!(s.partitions, 4);
        assert!(s.adoptions <= 4);
    }

    #[test]
    fn parse_round_trips_names() {
        for sched in Schedule::roster(1000, 4) {
            let parsed: Schedule = sched.name().parse().unwrap();
            assert_eq!(parsed.name(), sched.name());
        }
        assert!("nonsense".parse::<Schedule>().is_err());
        assert_eq!("static_cyclic".parse::<Schedule>().unwrap().name(), "omp_static_c");
    }

    #[test]
    fn cyclic_static_covers_and_is_deterministic() {
        let pool = ThreadPool::new(4);
        let n = 500;
        let sched = Schedule::omp_static_chunked(16);
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_for(&pool, 0..n, sched, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn try_apis_complete_when_token_never_fires() {
        let n = 500;
        let pool = ThreadPool::new(3);
        for sched in all_schedules(n, 3) {
            let cancel = CancelToken::new();
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            try_par_for_chunks(&pool, 0..n, sched, &cancel, |chunk| {
                for i in chunk {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            })
            .unwrap_or_else(|_| panic!("{}: spuriously cancelled", sched.name()));
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "{}: not exactly-once",
                sched.name()
            );
        }
        let cancel = CancelToken::new();
        let stats = try_hybrid_for(&pool, 0..n, None, &cancel, |_| {}).unwrap();
        assert_eq!(stats.partitions, 4);
        assert_eq!(stats.skipped_partitions, 0);
    }

    #[test]
    fn try_apis_reject_a_pre_fired_token() {
        let pool = ThreadPool::new(2);
        let cancel = CancelToken::new();
        cancel.cancel();
        let ran = AtomicUsize::new(0);
        for sched in all_schedules(100, 2) {
            let r = try_par_for_chunks(&pool, 0..100, sched, &cancel, |_| {
                ran.fetch_add(1, Ordering::Relaxed);
            });
            assert!(r.is_err(), "{}: must observe the fired token", sched.name());
        }
        assert_eq!(ran.load(Ordering::Relaxed), 0, "no body may run after cancellation");

        let err = try_hybrid_for(&pool, 0..100, None, &cancel, |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        })
        .expect_err("pre-fired token must cancel the hybrid loop");
        match err {
            HybridError::Cancelled(stats) => {
                assert_eq!(stats.skipped_partitions, stats.partitions);
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
        assert_eq!(ran.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn default_grain_uses_pool_worker_count() {
        // `DynamicStealing { grain: None }` must derive the Cilk default
        // grain from the *pool's* worker count, not the host CPU count:
        // for N = 16384 on a 4-worker pool, min(2048, N/8P) = 512. Pin the
        // formula and then observe the wired value — the largest chunk the
        // splitter hands out is exactly one full grain.
        let (n, p) = (16384usize, 4usize);
        assert_eq!(default_grain(n, p), 512);

        let pool = ThreadPool::new(p);
        for policy in [SplitPolicy::Lazy, SplitPolicy::Eager] {
            let max_len = std::sync::atomic::AtomicUsize::new(0);
            let total = AtomicUsize::new(0);
            par_for_chunks_policy(
                &pool,
                0..n,
                Schedule::DynamicStealing { grain: None },
                policy,
                |chunk| {
                    max_len.fetch_max(chunk.len(), Ordering::Relaxed);
                    total.fetch_add(chunk.len(), Ordering::Relaxed);
                },
            );
            assert_eq!(total.load(Ordering::Relaxed), n, "{}", policy.name());
            assert_eq!(
                max_len.load(Ordering::Relaxed),
                512,
                "{}: observed grain disagrees with default_grain(n, pool.num_workers())",
                policy.name()
            );
        }
    }

    #[test]
    fn grain_hint_overrides_every_chunked_scheme() {
        let (n, p) = (4096usize, 2usize);
        let pool = ThreadPool::new(p);
        for sched in [
            Schedule::vanilla(),
            Schedule::hybrid(),
            Schedule::omp_dynamic(999),
            Schedule::omp_static_chunked(999),
        ] {
            let max_len = AtomicUsize::new(0);
            let total = AtomicUsize::new(0);
            par_for_chunks_with_grain(&pool, 0..n, sched, 32, |chunk| {
                max_len.fetch_max(chunk.len(), Ordering::Relaxed);
                total.fetch_add(chunk.len(), Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::Relaxed), n, "{}", sched.name());
            assert!(
                max_len.load(Ordering::Relaxed) <= 32,
                "{}: chunk exceeded the 32-iteration hint",
                sched.name()
            );
        }
        // Zero clamps to 1 rather than panicking or hanging.
        let total = AtomicUsize::new(0);
        par_for_chunks_with_grain(&pool, 0..17, Schedule::vanilla(), 0, |chunk| {
            total.fetch_add(chunk.len(), Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 17);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Schedule::hybrid().name(), "hybrid");
        assert_eq!(Schedule::vanilla().name(), "vanilla");
        assert_eq!(Schedule::omp_static().name(), "omp_static");
        assert_eq!(Schedule::omp_dynamic(8).name(), "omp_dynamic");
        assert_eq!(Schedule::omp_guided().name(), "omp_guided");
        assert_eq!(Schedule::ff_static().name(), "ff_static");
    }
}
