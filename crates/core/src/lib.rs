//! Loop schedulers for the hybrid-scheduling reproduction.
//!
//! This crate implements the paper's contribution — the **hybrid loop
//! scheduler** ([`Schedule::Hybrid`], module [`hybrid`]) — together with
//! every baseline scheme its evaluation compares against, all running on
//! the same work-stealing runtime so that only the *scheduling policy*
//! varies:
//!
//! | paper name    | [`Schedule`] variant        | engine                              |
//! |---------------|-----------------------------|-------------------------------------|
//! | `hybrid`      | `Hybrid`                    | claim heuristic + work stealing     |
//! | `omp_static`  | `Static`                    | team broadcast, fixed blocks        |
//! | `omp_dynamic` | `WorkSharing`               | shared cursor, fixed chunks         |
//! | `omp_guided`  | `Guided`                    | shared cursor, decreasing chunks    |
//! | `ff` (static) | `StaticSharing`             | shared counter over fixed blocks    |
//! | `vanilla`     | `DynamicStealing`           | divide-and-conquer work stealing    |
//!
//! Quick start:
//!
//! ```
//! use parloop_runtime::ThreadPool;
//! use parloop_core::{par_for, Schedule};
//!
//! let pool = ThreadPool::new(4);
//! let data: Vec<std::sync::atomic::AtomicU64> =
//!     (0..1024).map(|_| std::sync::atomic::AtomicU64::new(0)).collect();
//! par_for(&pool, 0..1024, Schedule::hybrid(), |i| {
//!     data[i].store(i as u64 * 2, std::sync::atomic::Ordering::Relaxed);
//! });
//! assert_eq!(data[7].load(std::sync::atomic::Ordering::Relaxed), 14);
//! ```

pub mod adapt;
pub mod affinity;
pub mod claim;
pub mod hybrid;
pub mod lazy;
pub mod range;
pub mod reduce;
mod schedule;
mod sharing;
mod static_part;
mod stealing;
mod util;

pub use adapt::{
    controller_report, AdaptiveSite, Adjustment, LoopSignals, LoopStart, Phase, SiteSnapshot,
};
pub use affinity::{
    same_socket_fraction, same_worker_fraction, AffinityProbe, ConsecutiveAffinity, UNRECORDED,
};
pub use claim::{
    index_group, locality_earmark, partition_group, partition_home_socket, partitions_for_workers,
    partitions_oversubscribed, run_claim_heuristic, ClaimTable, ClaimWalker, HeuristicStats,
};
pub use hybrid::{HybridError, HybridStats};
#[doc(hidden)]
pub use lazy::lazy_for_chunks_coordinator;
pub use lazy::{lazy_for_chunks, lazy_for_chunks_counted, SplitPolicy};
pub use range::{block_bounds, block_of, default_grain, grain_bounds};
pub use reduce::{par_max_f64, par_reduce, par_sum_f64, par_sum_u64};
pub use schedule::{
    hybrid_for_with_stats, par_for, par_for_chunks, par_for_chunks_grain_policy,
    par_for_chunks_policy, par_for_chunks_with_grain, par_for_dyn, par_for_tracked, try_hybrid_for,
    try_par_for_chunks, GrainPolicy, Schedule,
};
pub use static_part::{static_cyclic_owner, static_owner};
pub use stealing::{
    ws_for, ws_for_chunks, ws_for_chunks_eager, ws_for_chunks_policy, ws_for_chunks_policy_counted,
    ws_for_policy,
};
