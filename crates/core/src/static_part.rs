//! Static partitioning — the `omp_static` baseline.
//!
//! The iteration space is divided into `P` near-equal blocks, block `w`
//! executed by worker `w`, always. The mapping is a pure function of
//! `(N, P, w)`, so consecutive loops over the same index space place each
//! iteration on the same worker — 100 % loop affinity by construction —
//! at the price of zero load balancing: the slowest block gates the loop.

use std::ops::Range;

use parloop_runtime::ThreadPool;

use crate::range::block_bounds;

/// Execute `body` over `range` with OpenMP-style static partitioning,
/// handing each worker its whole block as one chunk.
pub(crate) fn static_for<F>(pool: &ThreadPool, range: Range<usize>, body: &F)
where
    F: Fn(Range<usize>) + Sync,
{
    if range.is_empty() {
        return;
    }
    let n = range.len();
    let start = range.start;
    let team = pool.num_workers();
    pool.broadcast_all(|w| {
        let r = block_bounds(n, team, w);
        if !r.is_empty() {
            body(start + r.start..start + r.end);
        }
    });
}

/// The worker that statically owns iteration `i` of a loop of `n`
/// iterations on `p` workers (exposed for affinity analysis and tests).
pub fn static_owner(n: usize, p: usize, i: usize) -> usize {
    crate::range::block_of(n, p, i)
}

/// OpenMP `schedule(static, chunk)`: chunks are dealt *round-robin* to
/// workers (chunk `c` to worker `c mod P`). Still fully deterministic —
/// so it retains loop affinity like [`static_for`] — but interleaving
/// spreads monotonic imbalance across the team.
pub(crate) fn static_cyclic_for<F>(pool: &ThreadPool, range: Range<usize>, chunk: usize, body: &F)
where
    F: Fn(Range<usize>) + Sync,
{
    if range.is_empty() {
        return;
    }
    let chunk = chunk.max(1);
    let n = range.len();
    let start = range.start;
    let team = pool.num_workers();
    let chunks = n.div_ceil(chunk);
    pool.broadcast_all(|w| {
        let mut c = w;
        while c < chunks {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            body(start + lo..start + hi);
            c += team;
        }
    });
}

/// The worker owning iteration `i` under cyclic static scheduling.
pub fn static_cyclic_owner(p: usize, chunk: usize, i: usize) -> usize {
    (i / chunk.max(1)) % p
}

#[cfg(test)]
mod tests {
    use super::*;
    use parloop_runtime::current_worker_index;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn covers_exactly_once() {
        let pool = ThreadPool::new(4);
        let n = 103;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        static_for(&pool, 0..n, &|chunk: Range<usize>| {
            for i in chunk {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn iteration_lands_on_its_static_owner() {
        let pool = ThreadPool::new(4);
        let n = 64;
        let owners: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(usize::MAX)).collect();
        static_for(&pool, 0..n, &|chunk: Range<usize>| {
            let w = current_worker_index().unwrap();
            for i in chunk {
                owners[i].store(w, Ordering::Relaxed);
            }
        });
        for (i, o) in owners.iter().enumerate() {
            assert_eq!(o.load(Ordering::Relaxed), static_owner(n, 4, i), "iteration {i}");
        }
    }

    #[test]
    fn deterministic_across_repeats() {
        // The defining property: repeated loops map iterations identically.
        let pool = ThreadPool::new(3);
        let n = 50;
        let mut maps = Vec::new();
        for _ in 0..3 {
            let owners: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            static_for(&pool, 0..n, &|chunk: Range<usize>| {
                let w = current_worker_index().unwrap() + 1;
                for i in chunk {
                    owners[i].store(w, Ordering::Relaxed);
                }
            });
            maps.push(owners.iter().map(|o| o.load(Ordering::Relaxed)).collect::<Vec<_>>());
        }
        assert_eq!(maps[0], maps[1]);
        assert_eq!(maps[1], maps[2]);
    }

    #[test]
    fn cyclic_covers_exactly_once() {
        let pool = ThreadPool::new(3);
        let n = 101;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        static_cyclic_for(&pool, 0..n, 7, &|chunk: Range<usize>| {
            for i in chunk {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn cyclic_iterations_land_on_round_robin_owner() {
        let pool = ThreadPool::new(4);
        let n = 64;
        let chunk = 4;
        let owners: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(usize::MAX)).collect();
        static_cyclic_for(&pool, 0..n, chunk, &|r: Range<usize>| {
            let w = current_worker_index().unwrap();
            for i in r {
                owners[i].store(w, Ordering::Relaxed);
            }
        });
        for (i, o) in owners.iter().enumerate() {
            assert_eq!(
                o.load(Ordering::Relaxed),
                static_cyclic_owner(4, chunk, i),
                "iteration {i}"
            );
        }
    }

    #[test]
    fn cyclic_chunk_zero_treated_as_one() {
        let pool = ThreadPool::new(2);
        let count = AtomicUsize::new(0);
        static_cyclic_for(&pool, 0..10, 0, &|r: Range<usize>| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn offset_range() {
        let pool = ThreadPool::new(2);
        let sum = AtomicUsize::new(0);
        static_for(&pool, 100..110, &|chunk: Range<usize>| {
            for i in chunk {
                assert!((100..110).contains(&i));
                sum.fetch_add(i, Ordering::Relaxed);
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), (100..110).sum::<usize>());
    }
}
