//! Small unsafe utilities shared by the loop executors.

/// A raw-pointer wrapper asserting cross-thread transferability.
///
/// Used to hand borrows of the loop body (and other caller-stack state) to
/// heap jobs whose completion is awaited before the borrow expires. Always
/// access through [`SendPtr::get`] inside `move` closures so the whole
/// (Send) struct is captured rather than the raw field (edition-2021
/// precise capture would otherwise capture the non-Send pointer).
pub(crate) struct SendPtr<T: ?Sized>(*const T);

unsafe impl<T: ?Sized> Send for SendPtr<T> {}
unsafe impl<T: ?Sized> Sync for SendPtr<T> {}

impl<T: ?Sized> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: ?Sized> Copy for SendPtr<T> {}

impl<T: ?Sized> SendPtr<T> {
    pub(crate) fn new(r: &T) -> Self {
        SendPtr(r as *const T)
    }

    /// # Safety
    /// The pointee must outlive every dereference; callers uphold this by
    /// blocking on a latch that the last user of the pointer sets.
    pub(crate) unsafe fn get<'a>(self) -> &'a T {
        &*self.0
    }
}
