//! Per-level memory access latencies (the paper's Figure 5).
//!
//! The paper measured these with the Intel Memory Latency Checker on the
//! evaluation machine and uses them to convert hardware-counter totals into
//! an *inferred latency* metric (Figure 4, last column). We adopt the same
//! numbers; where the paper reports a range (remote L3 and remote DRAM) we
//! use the midpoint, as the paper does.

/// The level of the memory hierarchy that serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessLevel {
    /// Hit in the core's private L1 data cache.
    L1,
    /// Hit in the core's private L2.
    L2,
    /// Hit in the socket's shared L3.
    LocalL3,
    /// Miss serviced by the socket's own DRAM.
    LocalDram,
    /// Miss serviced by a *remote* socket's L3 (dirty/shared line elsewhere).
    RemoteL3,
    /// Miss serviced by a remote socket's DRAM.
    RemoteDram,
}

impl AccessLevel {
    /// All levels, in paper order (Figure 4 columns).
    pub const ALL: [AccessLevel; 6] = [
        AccessLevel::L1,
        AccessLevel::L2,
        AccessLevel::LocalL3,
        AccessLevel::LocalDram,
        AccessLevel::RemoteL3,
        AccessLevel::RemoteDram,
    ];

    /// Column label used by the figure harnesses.
    pub fn label(self) -> &'static str {
        match self {
            AccessLevel::L1 => "L1",
            AccessLevel::L2 => "L2",
            AccessLevel::LocalL3 => "local L3",
            AccessLevel::LocalDram => "local DRAM",
            AccessLevel::RemoteL3 => "remote L3",
            AccessLevel::RemoteDram => "remote DRAM",
        }
    }
}

/// Access latency (in CPU cycles) per hierarchy level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyTable {
    pub l1: f64,
    pub l2: f64,
    pub local_l3: f64,
    pub local_dram: f64,
    pub remote_l3: f64,
    pub remote_dram: f64,
}

impl LatencyTable {
    /// The paper's Figure 5 values for the Xeon E5-4620.
    ///
    /// Remote L3 is reported as 381.5–648.8 cycles and remote DRAM as
    /// 643.2–650.9 cycles; following the paper we use the midpoints.
    pub fn xeon_e5_4620() -> Self {
        LatencyTable {
            l1: 4.1,
            l2: 12.2,
            local_l3: 41.4,
            local_dram: 246.7,
            remote_l3: (381.5 + 648.8) / 2.0,
            remote_dram: (643.2 + 650.9) / 2.0,
        }
    }

    /// Latency of a single access serviced at `level`.
    #[inline]
    pub fn cycles(&self, level: AccessLevel) -> f64 {
        match level {
            AccessLevel::L1 => self.l1,
            AccessLevel::L2 => self.l2,
            AccessLevel::LocalL3 => self.local_l3,
            AccessLevel::LocalDram => self.local_dram,
            AccessLevel::RemoteL3 => self.remote_l3,
            AccessLevel::RemoteDram => self.remote_dram,
        }
    }

    /// The paper's *inferred latency* metric: sum of per-level counts times
    /// per-level latency. `counts` must be in [`AccessLevel::ALL`] order.
    pub fn inferred_latency(&self, counts: &[u64; 6]) -> f64 {
        AccessLevel::ALL.iter().zip(counts).map(|(&lvl, &n)| self.cycles(lvl) * n as f64).sum()
    }

    /// Inferred latency excluding the L1 column.
    ///
    /// The paper notes that OpenMP's redundant team-wide computation shows up
    /// mostly as extra L1 hits, so its Figure 4 comparison uses the inferred
    /// latency *without* L1 to compare affinity retention fairly.
    pub fn inferred_latency_without_l1(&self, counts: &[u64; 6]) -> f64 {
        self.inferred_latency(counts) - self.l1 * counts[0] as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_values() {
        let t = LatencyTable::xeon_e5_4620();
        assert!((t.l1 - 4.1).abs() < 1e-9);
        assert!((t.l2 - 12.2).abs() < 1e-9);
        assert!((t.local_l3 - 41.4).abs() < 1e-9);
        assert!((t.local_dram - 246.7).abs() < 1e-9);
        assert!((t.remote_l3 - 515.15).abs() < 1e-9);
        assert!((t.remote_dram - 647.05).abs() < 1e-9);
        // Monotone with distance from the core.
        assert!(t.l1 < t.l2 && t.l2 < t.local_l3);
        assert!(t.local_l3 < t.local_dram && t.local_dram < t.remote_l3);
        assert!(t.remote_l3 < t.remote_dram);
    }

    #[test]
    fn inferred_latency_weights_counts() {
        let t = LatencyTable::xeon_e5_4620();
        let counts = [10, 0, 0, 0, 0, 0];
        assert!((t.inferred_latency(&counts) - 41.0).abs() < 1e-9);
        assert_eq!(t.inferred_latency_without_l1(&counts), 0.0);

        let counts = [0, 0, 0, 1, 0, 1];
        let want = 246.7 + 647.05;
        assert!((t.inferred_latency(&counts) - want).abs() < 1e-9);
        assert!((t.inferred_latency_without_l1(&counts) - want).abs() < 1e-9);
    }

    #[test]
    fn level_labels_distinct() {
        let labels: std::collections::HashSet<_> =
            AccessLevel::ALL.iter().map(|l| l.label()).collect();
        assert_eq!(labels.len(), 6);
    }
}
