//! Thread-to-core pinning policies.
//!
//! The paper pins worker threads "to cores in a compact fashion during
//! executions, i.e., if less than 8 threads are used, only one socket is
//! employed". [`pin_order`] yields the core id that worker `w` is pinned to
//! under a given policy; the simulator uses this to place virtual workers on
//! the modeled topology.

use crate::machine::MachineSpec;

/// How P worker threads are laid out over the machine's cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinningPolicy {
    /// Fill socket 0 first, then socket 1, ... (the paper's policy).
    Compact,
    /// Round-robin across sockets (one worker per socket before reusing).
    Scatter,
}

/// The physical core worker `w` runs on under `policy`.
///
/// Workers are identified by contiguous ids `0..P`; cores are numbered
/// socket-major as in [`MachineSpec::socket_of`].
pub fn pin_order(machine: &MachineSpec, policy: PinningPolicy, w: usize) -> usize {
    let cores = machine.cores();
    let w = w % cores;
    match policy {
        PinningPolicy::Compact => w,
        PinningPolicy::Scatter => {
            let socket = w % machine.sockets;
            let slot = w / machine.sockets;
            socket * machine.cores_per_socket + slot
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_fills_one_socket_first() {
        let m = MachineSpec::xeon_e5_4620();
        for w in 0..8 {
            assert_eq!(m.socket_of(pin_order(&m, PinningPolicy::Compact, w)), 0);
        }
        assert_eq!(m.socket_of(pin_order(&m, PinningPolicy::Compact, 8)), 1);
        assert_eq!(m.socket_of(pin_order(&m, PinningPolicy::Compact, 31)), 3);
    }

    #[test]
    fn scatter_spreads_across_sockets() {
        let m = MachineSpec::xeon_e5_4620();
        let sockets: Vec<_> =
            (0..4).map(|w| m.socket_of(pin_order(&m, PinningPolicy::Scatter, w))).collect();
        assert_eq!(sockets, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pinning_is_a_permutation() {
        let m = MachineSpec::xeon_e5_4620();
        for policy in [PinningPolicy::Compact, PinningPolicy::Scatter] {
            let mut seen = vec![false; m.cores()];
            for w in 0..m.cores() {
                let c = pin_order(&m, policy, w);
                assert!(!seen[c], "{policy:?} maps two workers to core {c}");
                seen[c] = true;
            }
        }
    }
}
