//! Worker-to-socket maps for topology-aware scheduling.
//!
//! A [`TopologyMap`] tells a scheduler which socket each *worker* lives on
//! — the bridge between thread-pool worker ids and the machine model of
//! [`MachineSpec`]. The threaded runtime uses it to steal socket-first
//! (localized work stealing in the sense of Suksompong–Leiserson–Schardl)
//! and to earmark hybrid-loop partitions near their data; the simulator
//! derives the same map from its pinned virtual cores so both agree on
//! what "local" means.

use crate::machine::MachineSpec;
use crate::pinning::{pin_order, PinningPolicy};

/// An immutable worker → socket map.
///
/// The default ([`flat`](Self::flat)) places every worker on socket 0 —
/// the correct description of a machine the process knows nothing about,
/// and the map under which socket-first scheduling degenerates to the
/// uniform baseline (every victim is local).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyMap {
    socket_of: Vec<usize>,
    sockets: usize,
}

impl TopologyMap {
    /// A single-socket map: all `workers` on socket 0.
    pub fn flat(workers: usize) -> Self {
        TopologyMap { socket_of: vec![0; workers], sockets: 1 }
    }

    /// The map induced by pinning `workers` threads to `machine` under
    /// `policy`: worker `w` lives on the socket of core
    /// `pin_order(machine, policy, w)`.
    pub fn from_machine(machine: &MachineSpec, policy: PinningPolicy, workers: usize) -> Self {
        let socket_of =
            (0..workers).map(|w| machine.socket_of(pin_order(machine, policy, w))).collect();
        TopologyMap { socket_of, sockets: machine.sockets }
    }

    /// A map from an explicit per-worker socket table. The socket count is
    /// `max(table) + 1` (sockets with no workers at the top are dropped;
    /// an empty table means one socket).
    pub fn from_sockets(socket_of: Vec<usize>) -> Self {
        let sockets = socket_of.iter().copied().max().map_or(1, |m| m + 1);
        TopologyMap { socket_of, sockets }
    }

    /// Number of workers in the map.
    #[inline]
    pub fn workers(&self) -> usize {
        self.socket_of.len()
    }

    /// Number of sockets the map spans.
    #[inline]
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// Whether the map is effectively socket-free (zero or one socket):
    /// under a flat map every victim is local and socket-first scheduling
    /// must coincide with the uniform baseline.
    #[inline]
    pub fn is_flat(&self) -> bool {
        self.sockets <= 1
    }

    /// The socket worker `w` lives on. Workers beyond the table (possible
    /// when a map built for a smaller pool outlives a rebuild) fold back
    /// into it modulo the table length rather than panicking.
    #[inline]
    pub fn socket_of(&self, w: usize) -> usize {
        if self.socket_of.is_empty() {
            return 0;
        }
        self.socket_of[w % self.socket_of.len()]
    }

    /// Whether two workers share a socket.
    #[inline]
    pub fn same_socket(&self, a: usize, b: usize) -> bool {
        self.socket_of(a) == self.socket_of(b)
    }

    /// The raw worker → socket table.
    #[inline]
    pub fn socket_table(&self) -> &[usize] {
        &self.socket_of
    }

    /// Rank of worker `w` among the workers of its own socket (0-based,
    /// in worker-id order). Drives the XOR fallback when several workers
    /// share a partition's home socket.
    pub fn local_rank(&self, w: usize) -> usize {
        let s = self.socket_of(w);
        let w = if self.socket_of.is_empty() { 0 } else { w % self.socket_of.len() };
        self.socket_of[..w].iter().filter(|&&x| x == s).count()
    }

    /// How many workers live on `socket`.
    pub fn workers_on(&self, socket: usize) -> usize {
        self.socket_of.iter().filter(|&&x| x == socket).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_map_is_single_socket() {
        let t = TopologyMap::flat(4);
        assert_eq!(t.workers(), 4);
        assert_eq!(t.sockets(), 1);
        assert!(t.is_flat());
        assert!(t.same_socket(0, 3));
        assert_eq!(t.local_rank(3), 3);
        assert_eq!(t.workers_on(0), 4);
    }

    #[test]
    fn from_machine_compact_fills_sockets_in_order() {
        let m = MachineSpec::xeon_e5_4620();
        let t = TopologyMap::from_machine(&m, PinningPolicy::Compact, 32);
        assert_eq!(t.sockets(), 4);
        assert!(!t.is_flat());
        assert_eq!(t.socket_of(0), 0);
        assert_eq!(t.socket_of(7), 0);
        assert_eq!(t.socket_of(8), 1);
        assert_eq!(t.socket_of(31), 3);
        assert_eq!(t.local_rank(9), 1);
        assert_eq!(t.workers_on(2), 8);
    }

    #[test]
    fn from_machine_scatter_round_robins() {
        let m = MachineSpec::xeon_e5_4620();
        let t = TopologyMap::from_machine(&m, PinningPolicy::Scatter, 8);
        assert_eq!(t.socket_table(), &[0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(t.local_rank(5), 1);
    }

    #[test]
    fn from_sockets_infers_socket_count() {
        let t = TopologyMap::from_sockets(vec![0, 0, 1, 1]);
        assert_eq!(t.sockets(), 2);
        assert!(t.same_socket(0, 1));
        assert!(!t.same_socket(1, 2));
        assert_eq!(TopologyMap::from_sockets(vec![]).sockets(), 1);
    }

    #[test]
    fn out_of_table_workers_fold_back() {
        let t = TopologyMap::from_sockets(vec![0, 1]);
        assert_eq!(t.socket_of(2), 0);
        assert_eq!(t.socket_of(3), 1);
        assert_eq!(t.local_rank(2), 0);
        let empty = TopologyMap::from_sockets(vec![]);
        assert_eq!(empty.socket_of(7), 0);
        assert_eq!(empty.local_rank(7), 0);
    }
}
