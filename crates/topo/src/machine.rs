//! Description of a shared-memory multicore machine.

/// Geometry of one cache level.
///
/// # Invariant
///
/// A geometry must describe at least one set: `line > 0`, `ways > 0` and
/// `capacity >= line * ways` (equivalently `lines() >= ways`). A geometry
/// violating this is *degenerate* — [`sets`](Self::sets) would be zero and
/// [`set_of`](Self::set_of) would divide by it. The struct fields stay
/// public for literal construction of known-good machines; anything built
/// from computed sizes (e.g. programmatically scaled sim machines) should
/// go through [`checked`](Self::checked), and the accessors `debug_assert`
/// the invariant so a degenerate geometry fails loudly near its origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Cache-line size in bytes.
    pub line: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheGeometry {
    /// Validating constructor: `None` when the geometry is degenerate
    /// (zero line or ways, or fewer lines than ways — i.e. zero sets).
    pub fn checked(capacity: usize, line: usize, ways: usize) -> Option<Self> {
        let g = CacheGeometry { capacity, line, ways };
        g.is_valid().then_some(g)
    }

    /// Whether the struct invariant holds (at least one set).
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.line > 0 && self.ways > 0 && self.capacity / self.line >= self.ways
    }

    /// Number of cache lines this cache can hold.
    #[inline]
    pub fn lines(&self) -> usize {
        debug_assert!(self.line > 0, "degenerate CacheGeometry: line size 0");
        self.capacity / self.line
    }

    /// Number of sets (`lines / ways`).
    #[inline]
    pub fn sets(&self) -> usize {
        debug_assert!(
            self.is_valid(),
            "degenerate CacheGeometry ({self:?}): capacity < line * ways yields 0 sets"
        );
        self.lines() / self.ways
    }

    /// The set index a byte address maps to.
    #[inline]
    pub fn set_of(&self, addr: u64) -> usize {
        debug_assert!(
            self.is_valid(),
            "degenerate CacheGeometry ({self:?}): set_of would divide by 0 sets"
        );
        ((addr / self.line as u64) % self.sets() as u64) as usize
    }

    /// The line-aligned tag of a byte address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.line as u64
    }
}

/// How pages are assigned a home NUMA node by the memory allocator.
///
/// The paper states: "we have used NUMA-aware memory allocation to distribute
/// the data across sockets to allow the static partitioning to exploit the
/// locality benefit". [`NumaPolicy::BlockedByRange`] models exactly that: the
/// address space of an array is divided into `sockets` equal blocks, block
/// `s` homed on socket `s` — the same blocks static partitioning hands to the
/// cores of socket `s` under compact pinning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumaPolicy {
    /// Every page lives on socket 0 (no NUMA awareness).
    AllOnNode0,
    /// Pages are interleaved round-robin across sockets at page granularity.
    Interleaved { page: usize },
    /// An allocation is split into `sockets` contiguous blocks, block `s`
    /// homed on socket `s` (the paper's NUMA-aware allocation).
    BlockedByRange,
}

/// A complete machine description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineSpec {
    /// Number of sockets (NUMA nodes).
    pub sockets: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
    /// Per-core private L1 data cache.
    pub l1d: CacheGeometry,
    /// Per-core private L2 cache.
    pub l2: CacheGeometry,
    /// Per-socket shared L3 cache.
    pub l3: CacheGeometry,
    /// Core clock frequency in GHz (used to convert cycles to seconds).
    pub freq_ghz: f64,
    /// NUMA page-placement policy.
    pub numa: NumaPolicy,
}

impl MachineSpec {
    /// The paper's evaluation machine: a four-socket, 32-core
    /// Intel Xeon E5-4620 at 2.2 GHz.
    ///
    /// 32 KB 8-way L1d and 256 KB 8-way L2 per core, 16 MB 16-way shared L3
    /// per socket, 64-byte lines throughout, NUMA-aware blocked allocation.
    pub fn xeon_e5_4620() -> Self {
        MachineSpec {
            sockets: 4,
            cores_per_socket: 8,
            l1d: CacheGeometry { capacity: 32 << 10, line: 64, ways: 8 },
            l2: CacheGeometry { capacity: 256 << 10, line: 64, ways: 8 },
            l3: CacheGeometry { capacity: 16 << 20, line: 64, ways: 16 },
            freq_ghz: 2.2,
            numa: NumaPolicy::BlockedByRange,
        }
    }

    /// A small machine useful in tests: 2 sockets x 2 cores, tiny caches.
    pub fn tiny_for_tests() -> Self {
        MachineSpec {
            sockets: 2,
            cores_per_socket: 2,
            l1d: CacheGeometry { capacity: 1 << 10, line: 64, ways: 2 },
            l2: CacheGeometry { capacity: 4 << 10, line: 64, ways: 4 },
            l3: CacheGeometry { capacity: 16 << 10, line: 64, ways: 4 },
            freq_ghz: 1.0,
            numa: NumaPolicy::BlockedByRange,
        }
    }

    /// A programmatically scaled machine for large virtual-core sweeps:
    /// `sockets x cores_per_socket` with the Xeon's per-core and per-socket
    /// cache geometries, clock and NUMA policy. The per-socket L3 stays at
    /// 16 MB, so the aggregate last-level capacity grows with the socket
    /// count exactly as it would across real boards.
    pub fn scaled(sockets: usize, cores_per_socket: usize) -> Self {
        assert!(sockets > 0 && cores_per_socket > 0, "scaled machine needs at least one core");
        MachineSpec { sockets, cores_per_socket, ..Self::xeon_e5_4620() }
    }

    /// Total number of cores.
    #[inline]
    pub fn cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// The socket a core belongs to (cores are numbered socket-major).
    #[inline]
    pub fn socket_of(&self, core: usize) -> usize {
        debug_assert!(core < self.cores());
        core / self.cores_per_socket
    }

    /// Whether two cores share a socket (and hence an L3).
    #[inline]
    pub fn same_socket(&self, a: usize, b: usize) -> bool {
        self.socket_of(a) == self.socket_of(b)
    }

    /// Home socket of a byte `addr` within an allocation of `len` bytes,
    /// according to the machine's NUMA policy.
    pub fn home_socket(&self, addr: u64, alloc_base: u64, alloc_len: usize) -> usize {
        match self.numa {
            NumaPolicy::AllOnNode0 => 0,
            NumaPolicy::Interleaved { page } => {
                ((addr / page as u64) % self.sockets as u64) as usize
            }
            NumaPolicy::BlockedByRange => {
                if alloc_len == 0 {
                    return 0;
                }
                let off = addr.saturating_sub(alloc_base);
                let block = alloc_len.div_ceil(self.sockets);
                ((off as usize) / block).min(self.sockets - 1)
            }
        }
    }

    /// Convert a cycle count to seconds using the modeled clock.
    #[inline]
    pub fn cycles_to_secs(&self, cycles: f64) -> f64 {
        cycles / (self.freq_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_geometry() {
        let m = MachineSpec::xeon_e5_4620();
        assert_eq!(m.cores(), 32);
        assert_eq!(m.l1d.lines(), 512);
        assert_eq!(m.l1d.sets(), 64);
        assert_eq!(m.l2.lines(), 4096);
        assert_eq!(m.l3.lines(), 262144);
        assert_eq!(m.socket_of(0), 0);
        assert_eq!(m.socket_of(7), 0);
        assert_eq!(m.socket_of(8), 1);
        assert_eq!(m.socket_of(31), 3);
        assert!(m.same_socket(0, 7));
        assert!(!m.same_socket(7, 8));
    }

    #[test]
    fn set_mapping_wraps() {
        let g = CacheGeometry { capacity: 1 << 10, line: 64, ways: 2 };
        assert_eq!(g.lines(), 16);
        assert_eq!(g.sets(), 8);
        assert_eq!(g.set_of(0), 0);
        assert_eq!(g.set_of(64), 1);
        assert_eq!(g.set_of(64 * 8), 0);
        assert_eq!(g.line_of(63), 0);
        assert_eq!(g.line_of(64), 1);
    }

    #[test]
    fn numa_blocked_homes_match_static_partitions() {
        let m = MachineSpec::xeon_e5_4620();
        let len = 4096usize;
        // First quarter of the allocation homed on socket 0, last on socket 3.
        assert_eq!(m.home_socket(0, 0, len), 0);
        assert_eq!(m.home_socket(1023, 0, len), 0);
        assert_eq!(m.home_socket(1024, 0, len), 1);
        assert_eq!(m.home_socket(4095, 0, len), 3);
    }

    #[test]
    fn numa_interleaved() {
        let m = MachineSpec {
            numa: NumaPolicy::Interleaved { page: 4096 },
            ..MachineSpec::xeon_e5_4620()
        };
        assert_eq!(m.home_socket(0, 0, 1 << 20), 0);
        assert_eq!(m.home_socket(4096, 0, 1 << 20), 1);
        assert_eq!(m.home_socket(4096 * 4, 0, 1 << 20), 0);
    }

    #[test]
    fn numa_zero_len_alloc_is_node0() {
        let m = MachineSpec::xeon_e5_4620();
        assert_eq!(m.home_socket(123, 0, 0), 0);
    }

    #[test]
    fn checked_geometry_accepts_valid_shapes() {
        let g = CacheGeometry::checked(1 << 10, 64, 2).unwrap();
        assert_eq!(g.sets(), 8);
        // Exactly one set (lines == ways) is the smallest valid geometry.
        let one = CacheGeometry::checked(128, 64, 2).unwrap();
        assert_eq!(one.sets(), 1);
        assert_eq!(one.set_of(0), 0);
        assert_eq!(one.set_of(1 << 30), 0);
    }

    #[test]
    fn checked_geometry_rejects_degenerate_shapes() {
        // capacity < line * ways: lines() < ways, so sets() would be 0.
        assert_eq!(CacheGeometry::checked(64, 64, 2), None);
        // capacity < line: zero lines.
        assert_eq!(CacheGeometry::checked(32, 64, 1), None);
        // Zero line / zero ways.
        assert_eq!(CacheGeometry::checked(1 << 10, 0, 2), None);
        assert_eq!(CacheGeometry::checked(1 << 10, 64, 0), None);
        assert!(!CacheGeometry { capacity: 64, line: 64, ways: 2 }.is_valid());
    }

    #[test]
    #[should_panic(expected = "degenerate CacheGeometry")]
    #[cfg(debug_assertions)]
    fn degenerate_sets_fails_loudly_in_debug() {
        let g = CacheGeometry { capacity: 64, line: 64, ways: 2 };
        let _ = g.sets();
    }

    #[test]
    fn scaled_machine_keeps_xeon_geometry() {
        let m = MachineSpec::scaled(16, 16);
        assert_eq!(m.cores(), 256);
        assert_eq!(m.sockets, 16);
        assert_eq!(m.l3, MachineSpec::xeon_e5_4620().l3);
        assert_eq!(m.socket_of(255), 15);
        assert_eq!(m.numa, NumaPolicy::BlockedByRange);
    }
}
