//! Machine topology model for the `parloop` reproduction.
//!
//! The paper evaluates its hybrid loop scheduler on a 32-core, four-socket
//! Intel Xeon E5-4620 (8 cores per socket, 32 KB L1d, 256 KB L2 per core,
//! 16 MB shared L3 per socket, 512 GB DRAM). This crate captures that machine
//! as data — cache geometry, NUMA distances, per-level access latencies, and
//! the compact thread-pinning policy the paper uses — so that both the
//! threaded runtime (`parloop-runtime`) and the virtual-time simulator
//! (`parloop-sim`) agree on one description of the hardware.
//!
//! Nothing in this crate performs any scheduling; it is pure data plus a few
//! derived quantities (which socket owns a core, how many lines fit in a
//! cache, what a remote-DRAM access costs).

mod latency;
mod machine;
mod pinning;
mod topology;

pub use latency::{AccessLevel, LatencyTable};
pub use machine::{CacheGeometry, MachineSpec, NumaPolicy};
pub use pinning::{pin_order, PinningPolicy};
pub use topology::TopologyMap;
