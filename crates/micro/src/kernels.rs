//! Stride-1, autovectorizable leaf kernels.
//!
//! The paper's stride-13 [`iteration_body`](crate::IterativeMicro) is
//! deliberately prefetcher- (and vectorizer-) hostile; these kernels are
//! its complement: dense inner loops the compiler can saturate with SIMD,
//! so scheduler-overhead measurements can also be taken against leaves
//! that run at full machine throughput (an overhead hiding in a slow leaf
//! is invisible; against a saturated leaf it is the whole signal).
//!
//! Autovectorization notes, checked by `kernels_bench --check-saturation`
//! and the `scripts/verify.sh --asm` disassembly grep:
//!
//! * `axpy` is elementwise with no loop-carried dependence — LLVM
//!   vectorizes it directly.
//! * `dot` and `sum_u64` are reductions. A naive `fold` over `f64` is a
//!   loop-carried serial dependence that LLVM must *not* reorder (FP
//!   addition is non-associative), so the float kernels accumulate into
//!   [`LANES`] independent partial sums — re-associating by hand — which
//!   frees the backend to keep each lane in a vector register. Integer
//!   addition is associative, so `sum_u64` vectorizes even written
//!   naively; it uses the same shape for uniformity.
//! * The `*_asm_anchor` wrappers are `#[inline(never)]` so each kernel
//!   survives as a standalone symbol in the release binary for the
//!   disassembly check; the kernels themselves are `#[inline(always)]`
//!   so scheduler chunk loops monomorphize them with no call overhead.

/// Independent accumulator lanes for the float reductions: wide enough to
/// fill a 256-bit vector unit (4 × f64) with headroom for unrolling.
pub const LANES: usize = 8;

/// `y[i] += a * x[i]` over the full slices (lengths must match).
#[inline(always)]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy slices must have equal length");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Dot product with hand-re-associated lane accumulators (module docs).
#[inline(always)]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot slices must have equal length");
    let mut lanes = [0.0f64; LANES];
    let chunks = x.len() / LANES;
    for c in 0..chunks {
        let base = c * LANES;
        for l in 0..LANES {
            lanes[l] += x[base + l] * y[base + l];
        }
    }
    let mut acc: f64 = lanes.iter().sum();
    for i in (chunks * LANES)..x.len() {
        acc += x[i] * y[i];
    }
    acc
}

/// Integer sum reduction (associative, so the shape is for uniformity).
#[inline(always)]
pub fn sum_u64(x: &[u64]) -> u64 {
    let mut lanes = [0u64; LANES];
    let chunks = x.len() / LANES;
    for c in 0..chunks {
        let base = c * LANES;
        for l in 0..LANES {
            lanes[l] = lanes[l].wrapping_add(x[base + l]);
        }
    }
    let mut acc: u64 = lanes.iter().fold(0, |a, &v| a.wrapping_add(v));
    for &v in &x[chunks * LANES..] {
        acc = acc.wrapping_add(v);
    }
    acc
}

/// Standalone-symbol wrapper of [`axpy`] for the disassembly check.
#[inline(never)]
pub fn axpy_asm_anchor(a: f64, x: &[f64], y: &mut [f64]) {
    axpy(a, x, y);
}

/// Standalone-symbol wrapper of [`dot`] for the disassembly check.
#[inline(never)]
pub fn dot_asm_anchor(x: &[f64], y: &[f64]) -> f64 {
    dot(x, y)
}

/// Standalone-symbol wrapper of [`sum_u64`] for the disassembly check.
#[inline(never)]
pub fn sum_u64_asm_anchor(x: &[u64]) -> u64 {
    sum_u64(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_matches_scalar_reference() {
        let x: Vec<f64> = (0..1031).map(|i| i as f64 * 0.5).collect();
        let mut y: Vec<f64> = (0..1031).map(|i| i as f64).collect();
        let mut expect = y.clone();
        for (e, xi) in expect.iter_mut().zip(&x) {
            *e += 3.0 * xi;
        }
        axpy(3.0, &x, &mut y);
        assert_eq!(y, expect);
    }

    #[test]
    fn dot_matches_scalar_reference_within_fp_tolerance() {
        // Lane re-association changes the FP summation order, so compare
        // with a relative tolerance, including a remainder-tail length.
        for n in [0usize, 1, 7, LANES, LANES + 3, 1031] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let y: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
            let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            let got = dot(&x, &y);
            assert!((got - naive).abs() <= 1e-9 * (1.0 + naive.abs()), "n={n}: {got} vs {naive}");
        }
    }

    #[test]
    fn sum_u64_matches_exactly_for_all_tail_lengths() {
        for n in 0..(4 * LANES + 3) {
            let x: Vec<u64> = (0..n as u64).map(|i| i * i + 1).collect();
            assert_eq!(sum_u64(&x), x.iter().sum::<u64>(), "n={n}");
        }
    }

    #[test]
    fn anchors_agree_with_kernels() {
        let x: Vec<f64> = (0..257).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..257).map(|i| 2.0 * i as f64).collect();
        assert_eq!(dot_asm_anchor(&x, &y), dot(&x, &y));
        let u: Vec<u64> = (0..257).collect();
        assert_eq!(sum_u64_asm_anchor(&u), sum_u64(&u));
        let mut a = y.clone();
        let mut b = y.clone();
        axpy(0.25, &x, &mut a);
        axpy_asm_anchor(0.25, &x, &mut b);
        assert_eq!(a, b);
    }
}
