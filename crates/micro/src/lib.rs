//! The paper's iterative microbenchmarks on the *threaded* runtime.
//!
//! Section V: "Each microbenchmark consists of an outer sequential loop
//! with an inner parallel loop, where each parallel loop iteration
//! operates on an array in strides of 13 modulo the size of the array
//! (which prevents the prefetcher from prefetching) … Each parallel
//! iteration in the balanced accesses the same amount of data, whereas the
//! parallel iterations in unbalanced access variable amounts. The arrays
//! accessed by different parallel iterations do not overlap in memory."
//!
//! On this 1-core host the timing curves come from `parloop-sim`; this
//! crate exists so the *real* scheduler runs the real workload — for
//! correctness tests, affinity measurements (Figure 2's metric on live
//! threads), and host-local wall-clock overhead benches.

pub mod kernels;

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parloop_core::{par_for_chunks, par_for_tracked, AffinityProbe, ConsecutiveAffinity, Schedule};
use parloop_runtime::ThreadPool;

/// Parameters of a threaded microbenchmark instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroParams {
    /// Total array size in bytes (8-byte elements).
    pub working_set: usize,
    /// Parallel iterations per inner loop.
    pub iterations: usize,
    /// Passes each iteration makes over its block.
    pub passes: u32,
    /// `true` for equal blocks, `false` for a 7:1 linear ramp.
    pub balanced: bool,
}

impl MicroParams {
    /// A small instance suitable for tests on modest hosts.
    pub fn small(balanced: bool) -> Self {
        MicroParams { working_set: 1 << 20, iterations: 128, passes: 1, balanced }
    }
}

/// Split `total` elements into `n` ramped blocks (`ramp` = max/min size).
fn ramped_blocks(total: usize, n: usize, ramp: f64) -> Vec<(usize, usize)> {
    assert!(n > 0 && ramp >= 1.0);
    let weights: Vec<f64> = (0..n)
        .map(|i| if n == 1 { 1.0 } else { 1.0 + (ramp - 1.0) * i as f64 / (n - 1) as f64 })
        .collect();
    let wsum: f64 = weights.iter().sum();
    let mut blocks = Vec::with_capacity(n);
    let mut start = 0usize;
    for (i, w) in weights.iter().enumerate() {
        let len =
            if i == n - 1 { total - start } else { ((total as f64) * w / wsum).round() as usize };
        blocks.push((start, len));
        start += len;
    }
    debug_assert_eq!(start, total);
    blocks
}

/// One microbenchmark instance: a shared array divided into disjoint
/// per-iteration blocks.
pub struct IterativeMicro {
    data: Vec<AtomicU64>,
    blocks: Vec<(usize, usize)>,
    passes: u32,
}

impl IterativeMicro {
    pub fn new(params: MicroParams) -> Self {
        let total_elems = params.working_set / 8;
        let ramp = if params.balanced { 1.0 } else { 7.0 };
        IterativeMicro {
            data: (0..total_elems).map(|_| AtomicU64::new(0)).collect(),
            blocks: ramped_blocks(total_elems, params.iterations, ramp),
            passes: params.passes,
        }
    }

    /// Number of parallel iterations per inner loop.
    pub fn iterations(&self) -> usize {
        self.blocks.len()
    }

    /// The paper's kernel for one parallel iteration: stride-13 walk over
    /// the iteration's private block, read-modify-write per element.
    #[inline]
    pub fn iteration_body(&self, i: usize) {
        let (start, len) = self.blocks[i];
        if len == 0 {
            return;
        }
        for _ in 0..self.passes {
            let mut idx = 0usize;
            for _ in 0..len {
                idx = (idx + 13) % len;
                self.data[start + idx].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Run one inner parallel loop under `sched`.
    pub fn run_phase(&self, pool: &ThreadPool, sched: Schedule) {
        par_for_chunks(pool, 0..self.iterations(), sched, |chunk| {
            for i in chunk {
                self.iteration_body(i);
            }
        });
    }

    /// Run `outer` phases, returning wall-clock time.
    pub fn run_phases(&self, pool: &ThreadPool, sched: Schedule, outer: usize) -> Duration {
        let t0 = Instant::now();
        for _ in 0..outer {
            self.run_phase(pool, sched);
        }
        t0.elapsed()
    }

    /// Run `outer` phases recording per-iteration worker placement;
    /// returns the consecutive-loop affinity fractions.
    pub fn run_phases_tracked(
        &self,
        pool: &ThreadPool,
        sched: Schedule,
        outer: usize,
    ) -> ConsecutiveAffinity {
        let probe = AffinityProbe::new(0..self.iterations());
        let mut affinity = ConsecutiveAffinity::new();
        for _ in 0..outer {
            probe.reset();
            par_for_tracked(pool, 0..self.iterations(), sched, &probe, |i| self.iteration_body(i));
            affinity.observe(probe.snapshot());
        }
        affinity
    }

    /// Sum of all elements — equals `phases × passes × elements` when every
    /// iteration ran exactly once per phase.
    pub fn checksum(&self) -> u64 {
        self.data.iter().map(|v| v.load(Ordering::Relaxed)).sum()
    }

    /// Total elements in the array.
    pub fn elements(&self) -> usize {
        self.data.len()
    }
}

/// Run the sequential version (no parallel constructs) for `outer` phases —
/// the `T_s` baseline of the paper's work-efficiency column.
pub fn run_sequential(micro: &IterativeMicro, outer: usize) -> Duration {
    let t0 = Instant::now();
    for _ in 0..outer {
        for i in 0..micro.iterations() {
            micro.iteration_body(i);
        }
    }
    t0.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramped_blocks_cover_everything() {
        for (total, n, ramp) in [(1000, 7, 1.0), (1000, 7, 7.0), (128, 128, 3.0)] {
            let blocks = ramped_blocks(total, n, ramp);
            let mut expect = 0;
            for &(s, l) in &blocks {
                assert_eq!(s, expect);
                expect += l;
            }
            assert_eq!(expect, total);
        }
    }

    #[test]
    fn checksum_counts_every_element_touch() {
        let m = IterativeMicro::new(MicroParams {
            working_set: 64 << 10,
            iterations: 16,
            passes: 2,
            balanced: true,
        });
        let pool = ThreadPool::new(2);
        m.run_phase(&pool, Schedule::hybrid());
        // The stride-13 walk makes exactly `len` touches per pass.
        assert_eq!(m.checksum(), (m.elements() as u64) * 2);
    }

    #[test]
    fn all_schedules_agree_on_checksum() {
        let pool = ThreadPool::new(3);
        for balanced in [true, false] {
            let params =
                MicroParams { working_set: 128 << 10, iterations: 32, passes: 1, balanced };
            let expect = {
                let m = IterativeMicro::new(params);
                run_sequential(&m, 2);
                m.checksum()
            };
            for sched in Schedule::roster(32, 3) {
                let m = IterativeMicro::new(params);
                m.run_phases(&pool, sched, 2);
                assert_eq!(m.checksum(), expect, "{} balanced={balanced}", sched.name());
            }
        }
    }

    #[test]
    fn static_affinity_is_one_on_live_threads() {
        let pool = ThreadPool::new(4);
        let m = IterativeMicro::new(MicroParams::small(true));
        let aff = m.run_phases_tracked(&pool, Schedule::omp_static(), 4);
        for &f in aff.fractions() {
            assert!((f - 1.0).abs() < 1e-12, "static affinity {f}");
        }
    }

    #[test]
    fn tracked_run_still_correct() {
        let pool = ThreadPool::new(4);
        let m = IterativeMicro::new(MicroParams::small(false));
        let aff = m.run_phases_tracked(&pool, Schedule::hybrid(), 3);
        assert_eq!(aff.fractions().len(), 2);
        assert_eq!(m.checksum(), m.elements() as u64 * 3);
    }
}
