//! The virtual-time execution engine.
//!
//! Workers are virtual cores with individual clocks, pinned to the modeled
//! machine's physical cores (compact pinning, as in the paper). One loop
//! executes by repeatedly advancing the globally *least-advanced* unfinished
//! worker by one policy action; iteration costs combine the workload
//! model's CPU cycles with memory latency from the cache hierarchy, which
//! persists across loops — so loop affinity translates into cache hits
//! exactly as on the real machine.

use parloop_core::{default_grain, same_socket_fraction, same_worker_fraction, UNRECORDED};
use parloop_simcache::{AccessCounts, MemoryHierarchy};
use parloop_topo::{pin_order, LatencyTable, MachineSpec, PinningPolicy, TopologyMap};

use crate::costs::CostModel;
use crate::policy::{make_policy, Action, PolicyKind};
use crate::workload::AppModel;

/// Everything fixed about a simulation: machine, latencies, costs, pinning.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    pub machine: MachineSpec,
    pub latency: LatencyTable,
    pub cost: CostModel,
    pub pinning: PinningPolicy,
}

impl SimConfig {
    /// The paper's machine with calibrated costs and compact pinning.
    pub fn xeon() -> Self {
        SimConfig {
            machine: MachineSpec::xeon_e5_4620(),
            latency: LatencyTable::xeon_e5_4620(),
            cost: CostModel::xeon(),
            pinning: PinningPolicy::Compact,
        }
    }
}

/// Output of one simulated application run.
#[derive(Debug, Clone)]
pub struct SimResult {
    pub kind: PolicyKind,
    pub workers: usize,
    /// Virtual end-to-end cycles.
    pub total_cycles: f64,
    /// Per-level access counts over the whole run (Figure 4's columns).
    pub counts: AccessCounts,
    /// Mean consecutive-loop affinity per loop slot (Figure 2's metric).
    pub affinity: Vec<f64>,
    /// Mean consecutive-loop *same-socket* fraction per loop slot — the
    /// coarser locality metric behind Figure 4: an iteration migrating
    /// between cores of one socket still hits that socket's L3 and DRAM.
    pub socket_affinity: Vec<f64>,
    /// Successful steals whose victim shared the thief's socket.
    pub local_steals: u64,
    /// Successful steals from a victim on another socket.
    pub remote_steals: u64,
    /// Cycles per outer phase.
    pub per_phase_cycles: Vec<f64>,
}

impl SimResult {
    /// Mean affinity across loop slots, weighted by loop length — the
    /// single number Figure 2 reports per configuration.
    pub fn mean_affinity(&self, app: &AppModel) -> f64 {
        Self::weighted_mean(&self.affinity, app)
    }

    /// Mean same-socket fraction across loop slots, weighted by loop
    /// length (the locality analogue of [`mean_affinity`](Self::mean_affinity)).
    pub fn mean_socket_affinity(&self, app: &AppModel) -> f64 {
        Self::weighted_mean(&self.socket_affinity, app)
    }

    /// Fraction of successful steals that stayed on the thief's socket;
    /// `None` when the run stole nothing.
    pub fn local_steal_fraction(&self) -> Option<f64> {
        let total = self.local_steals + self.remote_steals;
        (total > 0).then(|| self.local_steals as f64 / total as f64)
    }

    fn weighted_mean(per_slot: &[f64], app: &AppModel) -> f64 {
        let total: usize = app.loops.iter().map(|l| l.n).sum();
        if total == 0 {
            return 1.0;
        }
        per_slot.iter().zip(&app.loops).map(|(a, l)| a * l.n as f64 / total as f64).sum()
    }
}

/// One executed chunk in a traced simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkEvent {
    /// Worker that executed the chunk.
    pub worker: usize,
    /// Virtual time the chunk started.
    pub start: f64,
    /// Cycles it took (scheduling overhead included).
    pub cycles: f64,
    /// Iteration range `lo..hi`.
    pub lo: usize,
    pub hi: usize,
}

/// Per-loop-instance chunk events from a traced run.
#[derive(Debug, Clone)]
pub struct LoopTrace {
    /// Loop name from the workload model.
    pub name: &'static str,
    /// Outer phase the instance belongs to.
    pub phase: usize,
    pub events: Vec<ChunkEvent>,
}

impl LoopTrace {
    /// Busy cycles per worker over this loop instance.
    pub fn busy_per_worker(&self, p: usize) -> Vec<f64> {
        let mut busy = vec![0.0; p];
        for e in &self.events {
            busy[e.worker] += e.cycles;
        }
        busy
    }

    /// Chunks executed per worker.
    pub fn chunks_per_worker(&self, p: usize) -> Vec<usize> {
        let mut n = vec![0usize; p];
        for e in &self.events {
            n[e.worker] += 1;
        }
        n
    }
}

/// Simulate `app` under scheme `kind` with `p` workers.
///
/// ```
/// use parloop_sim::{micro_app, simulate, MicroParams, PolicyKind, SimConfig};
///
/// let app = micro_app(MicroParams::small_for_tests(true));
/// let r = simulate(&app, PolicyKind::Hybrid, 8, &SimConfig::xeon());
/// assert!(r.total_cycles > 0.0);
/// assert_eq!(r.workers, 8);
/// ```
pub fn simulate(app: &AppModel, kind: PolicyKind, p: usize, cfg: &SimConfig) -> SimResult {
    simulate_inner(app, kind, p, cfg, None).0
}

/// Like [`simulate`], additionally recording every executed chunk.
/// Traces grow with the workload (one event per chunk); use scaled-down
/// models for interactive exploration.
pub fn simulate_traced(
    app: &AppModel,
    kind: PolicyKind,
    p: usize,
    cfg: &SimConfig,
) -> (SimResult, Vec<LoopTrace>) {
    let mut traces = Vec::new();
    let (r, _) = simulate_inner(app, kind, p, cfg, Some(&mut traces));
    (r, traces)
}

fn simulate_inner(
    app: &AppModel,
    kind: PolicyKind,
    p: usize,
    cfg: &SimConfig,
    mut traces: Option<&mut Vec<LoopTrace>>,
) -> (SimResult, ()) {
    assert!(p >= 1 && p <= cfg.machine.cores(), "p={p} outside machine");
    let mut mem = MemoryHierarchy::new(cfg.machine, cfg.latency);
    let cores: Vec<usize> = (0..p).map(|w| pin_order(&cfg.machine, cfg.pinning, w)).collect();
    // The worker → socket map induced by the pinning — the same map a
    // threaded pool would be built with on this machine.
    let topo = TopologyMap::from_sockets(cores.iter().map(|&c| cfg.machine.socket_of(c)).collect());
    let socket_of_u32: Vec<u32> = topo.socket_table().iter().map(|&s| s as u32).collect();

    // Consecutive-loop locality per slot: owner maps of the previous
    // instance plus the per-transition worker/socket retention fractions.
    let mut prev_owners: Vec<Option<Vec<u32>>> = app.loops.iter().map(|_| None).collect();
    let mut worker_fracs: Vec<Vec<f64>> = app.loops.iter().map(|_| Vec::new()).collect();
    let mut socket_fracs: Vec<Vec<f64>> = app.loops.iter().map(|_| Vec::new()).collect();
    let (mut local_steals, mut remote_steals) = (0u64, 0u64);
    let mut per_phase = Vec::with_capacity(app.outer);
    let mut clock = 0.0_f64;

    let mut loop_seq = 0u64;
    for phase in 0..app.outer {
        let phase_start = clock;
        for (slot, lm) in app.loops.iter().enumerate() {
            loop_seq += 1;
            let mut events = traces.as_ref().map(|_| Vec::new());
            let out = run_one_loop(
                lm,
                kind,
                p,
                cfg,
                &cores,
                &topo,
                &mut mem,
                clock,
                loop_seq,
                events.as_mut(),
            );
            clock = out.end;
            local_steals += out.local_steals;
            remote_steals += out.remote_steals;
            if let Some(owners) = out.owners {
                if let Some(prev) = &prev_owners[slot] {
                    worker_fracs[slot].push(same_worker_fraction(prev, &owners));
                    socket_fracs[slot].push(same_socket_fraction(prev, &owners, &socket_of_u32));
                }
                prev_owners[slot] = Some(owners);
            }
            if let (Some(traces), Some(events)) = (traces.as_deref_mut(), events) {
                traces.push(LoopTrace { name: lm.name, phase, events });
            }
            clock += app.seq_between;
        }
        per_phase.push(clock - phase_start);
    }

    let mean = |fracs: &Vec<f64>| {
        if fracs.is_empty() {
            1.0
        } else {
            fracs.iter().sum::<f64>() / fracs.len() as f64
        }
    };
    (
        SimResult {
            kind,
            workers: p,
            total_cycles: clock,
            counts: mem.total_counts(),
            affinity: worker_fracs.iter().map(mean).collect(),
            socket_affinity: socket_fracs.iter().map(mean).collect(),
            local_steals,
            remote_steals,
            per_phase_cycles: per_phase,
        },
        (),
    )
}

/// The sequential baseline `T_s`: no parallel constructs, no overheads,
/// one core.
pub fn sequential_time(app: &AppModel, cfg: &SimConfig) -> f64 {
    let mut free = *cfg;
    free.cost = CostModel::free();
    simulate(app, PolicyKind::Sequential, 1, &free).total_cycles
}

/// Splitmix64 step, used to derive per-loop-instance jitter.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What one loop instance produced: its end time, the owner map (worker
/// per iteration; `None` for an empty loop) and the policy's steal census.
struct LoopOutcome {
    end: f64,
    owners: Option<Vec<u32>>,
    local_steals: u64,
    remote_steals: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_one_loop(
    lm: &crate::workload::LoopModel,
    kind: PolicyKind,
    p: usize,
    cfg: &SimConfig,
    cores: &[usize],
    topo: &TopologyMap,
    mem: &mut MemoryHierarchy,
    start: f64,
    loop_seq: u64,
    mut events: Option<&mut Vec<ChunkEvent>>,
) -> LoopOutcome {
    if lm.n == 0 {
        return LoopOutcome { end: start, owners: None, local_steals: 0, remote_steals: 0 };
    }
    let chunk_hint = default_grain(lm.n, p);
    let seed = mix64(loop_seq);
    let mut policy = make_policy(kind, lm.n, p, chunk_hint, cfg.cost, seed, topo);

    // Per-loop-instance arrival jitter: on a real machine workers never
    // reach a loop in lock-step (interrupts, cache state, prior work), and
    // it is precisely this noise that keeps dynamic schemes from replaying
    // the previous loop's schedule. Bounded by half a discovery hop.
    let jitter = |w: usize| -> f64 {
        if p == 1 {
            return 0.0;
        }
        let h = mix64(seed ^ (w as u64).wrapping_mul(0x9E37_79B9));
        (h % 1024) as f64 * (cfg.cost.discovery_hop / 2048.0)
    };

    let mut clocks: Vec<f64> = (0..p)
        .map(|w| {
            start
                + jitter(w)
                + if kind.is_team() { cfg.cost.team_fork } else { cfg.cost.arrival(w) }
        })
        .collect();
    let mut finished = vec![false; p];
    let mut ran = vec![false; p];
    let mut owners = vec![UNRECORDED; lm.n];

    let mut active = p;
    while active > 0 {
        // Advance the least-advanced unfinished worker.
        let mut w = usize::MAX;
        let mut best = f64::INFINITY;
        for (i, &c) in clocks.iter().enumerate() {
            if !finished[i] && c < best {
                best = c;
                w = i;
            }
        }
        match policy.next(w) {
            Action::Run { lo, hi, overhead } => {
                ran[w] = true;
                let chunk_start = clocks[w];
                let mut cost = overhead;
                for (i, owner) in owners.iter_mut().enumerate().take(hi).skip(lo) {
                    cost += lm.iter_cost(i, cores[w], mem);
                    *owner = w as u32;
                }
                clocks[w] += cost;
                if let Some(ev) = events.as_deref_mut() {
                    ev.push(ChunkEvent { worker: w, start: chunk_start, cycles: cost, lo, hi });
                }
            }
            Action::Stall(c) => clocks[w] += c.max(1.0),
            Action::Finished => {
                finished[w] = true;
                active -= 1;
            }
        }
    }

    let mut end = start;
    if kind.is_team() {
        // All team members synchronize on a barrier at the end.
        for &c in &clocks {
            end = end.max(c);
        }
        end += cfg.cost.barrier_per_worker * (p as f64).log2().max(1.0);
    } else {
        // Steal-discovered loops complete when the last chunk finishes;
        // workers that never obtained work do not gate the loop.
        for w2 in 0..p {
            if ran[w2] {
                end = end.max(clocks[w2]);
            }
        }
    }

    let (local_steals, remote_steals) = policy.steal_counts();
    LoopOutcome { end, owners: Some(owners), local_steals, remote_steals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{blocked_offsets, AccessPattern, AddressSpace, CostProfile, LoopModel};

    fn tiny_app(balanced: bool, outer: usize) -> AppModel {
        let mut sp = AddressSpace::new();
        let ws = 256 << 10; // 256 KB
        let n = 64;
        let arr = sp.alloc(ws);
        let ramp = if balanced { 1.0 } else { 6.0 };
        AppModel {
            name: "tiny".into(),
            loops: vec![LoopModel {
                name: "loop",
                n,
                cpu: if balanced {
                    CostProfile::Uniform(500.0)
                } else {
                    CostProfile::LinearRamp { min: 200.0, max: 1200.0 }
                },
                patterns: vec![AccessPattern::Block {
                    array: arr,
                    offsets: blocked_offsets(ws, n, ramp),
                    passes: 1,
                    write: true,
                }],
            }],
            outer,
            seq_between: 0.0,
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let app = tiny_app(true, 3);
        let cfg = SimConfig::xeon();
        let a = simulate(&app, PolicyKind::Hybrid, 8, &cfg);
        let b = simulate(&app, PolicyKind::Hybrid, 8, &cfg);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.affinity, b.affinity);
    }

    #[test]
    fn more_workers_never_much_slower() {
        let app = tiny_app(true, 2);
        let cfg = SimConfig::xeon();
        for kind in PolicyKind::roster() {
            let t1 = simulate(&app, kind, 1, &cfg).total_cycles;
            let t8 = simulate(&app, kind, 8, &cfg).total_cycles;
            assert!(
                t8 < t1 * 1.10,
                "{}: T8 {t8:.0} vs T1 {t1:.0} — parallel run should not be slower",
                kind.name()
            );
        }
    }

    #[test]
    fn sequential_baseline_below_any_scheme_t1() {
        let app = tiny_app(true, 2);
        let cfg = SimConfig::xeon();
        let ts = sequential_time(&app, &cfg);
        for kind in PolicyKind::roster() {
            let t1 = simulate(&app, kind, 1, &cfg).total_cycles;
            assert!(ts <= t1 * 1.001, "{}: Ts {ts:.0} must not exceed T1 {t1:.0}", kind.name());
        }
    }

    #[test]
    fn static_affinity_is_perfect() {
        let app = tiny_app(true, 5);
        let cfg = SimConfig::xeon();
        let r = simulate(&app, PolicyKind::Static, 8, &cfg);
        assert!((r.affinity[0] - 1.0).abs() < 1e-12, "static affinity {}", r.affinity[0]);
    }

    #[test]
    fn hybrid_affinity_beats_stealing_on_balanced() {
        let app = tiny_app(true, 5);
        let cfg = SimConfig::xeon();
        let hybrid = simulate(&app, PolicyKind::Hybrid, 8, &cfg);
        let vanilla = simulate(&app, PolicyKind::Stealing, 8, &cfg);
        assert!(
            hybrid.affinity[0] > vanilla.affinity[0],
            "hybrid {} must beat vanilla {}",
            hybrid.affinity[0],
            vanilla.affinity[0]
        );
        // The tiny test app (64 iterations, grain 1) leaves room for a few
        // end-of-loop steals; the full-size Figure 2 run lands ≈ 1.0.
        assert!(hybrid.affinity[0] > 0.8, "hybrid affinity {}", hybrid.affinity[0]);
    }

    #[test]
    fn unbalanced_hurts_static_more_than_hybrid() {
        let app = tiny_app(false, 2);
        let cfg = SimConfig::xeon();
        let st = simulate(&app, PolicyKind::Static, 8, &cfg).total_cycles;
        let hy = simulate(&app, PolicyKind::Hybrid, 8, &cfg).total_cycles;
        // Hybrid load balances; static is gated by the largest block.
        assert!(hy < st, "hybrid {hy:.0} should beat static {st:.0} on unbalanced work");
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn traced_run_matches_untraced_and_covers_iterations() {
        let app = tiny_app(false, 2);
        let cfg = SimConfig::xeon();
        let plain = simulate(&app, PolicyKind::Hybrid, 4, &cfg);
        let (traced, traces) = simulate_traced(&app, PolicyKind::Hybrid, 4, &cfg);
        assert_eq!(plain.total_cycles, traced.total_cycles);
        assert_eq!(traces.len(), 2, "one trace per loop instance");
        for t in &traces {
            // Every iteration appears in exactly one chunk.
            let mut seen = vec![false; app.loops[0].n];
            for e in &t.events {
                for i in e.lo..e.hi {
                    assert!(!seen[i], "iteration {i} in two chunks");
                    seen[i] = true;
                }
                assert!(e.cycles > 0.0 && e.start >= 0.0);
                assert!(e.worker < 4);
            }
            assert!(seen.iter().all(|&s| s), "trace missed iterations");
            // Aggregations agree with raw events.
            let busy: f64 = t.busy_per_worker(4).iter().sum();
            let direct: f64 = t.events.iter().map(|e| e.cycles).sum();
            assert!((busy - direct).abs() < 1e-9);
            assert_eq!(t.chunks_per_worker(4).iter().sum::<usize>(), t.events.len());
        }
    }

    #[test]
    fn socket_first_wins_locality_at_scale() {
        // 128 virtual cores over 16 sockets, skewed working set: the
        // topology-aware hybrid must keep more consecutive-loop iterations
        // on their socket and steal locally more often than the uniform
        // hybrid (the Figure 4-style comparison the bench harness scales
        // up).
        let app = crate::micro_model::micro_app(crate::micro_model::MicroParams {
            working_set: 4 << 20,
            iterations: 512,
            passes: 1,
            outer: 4,
            balanced: false,
        });
        let cfg = SimConfig {
            machine: MachineSpec::scaled(16, 8),
            latency: LatencyTable::xeon_e5_4620(),
            cost: CostModel::xeon(),
            pinning: PinningPolicy::Compact,
        };
        let uni = simulate(&app, PolicyKind::Hybrid, 128, &cfg);
        let sf = simulate(&app, PolicyKind::HybridSocketFirst, 128, &cfg);
        assert!(
            sf.mean_socket_affinity(&app) >= uni.mean_socket_affinity(&app),
            "socket-first locality {:.4} below uniform {:.4}",
            sf.mean_socket_affinity(&app),
            uni.mean_socket_affinity(&app)
        );
        let sf_local = sf.local_steal_fraction().unwrap_or(1.0);
        let uni_local = uni.local_steal_fraction().unwrap_or(0.0);
        assert!(
            sf_local >= uni_local,
            "socket-first local-steal fraction {sf_local:.4} below uniform {uni_local:.4}"
        );
    }

    #[test]
    fn scaled_sims_are_deterministic() {
        // Determinism pin: same seed and PolicyKind → identical cycle
        // counts, at 128 and at 512 virtual cores.
        let app = crate::micro_model::micro_app(crate::micro_model::MicroParams {
            working_set: 2 << 20,
            iterations: 1024,
            passes: 1,
            outer: 2,
            balanced: false,
        });
        for (sockets, cps, p) in [(16, 8, 128), (32, 16, 512)] {
            let cfg = SimConfig {
                machine: MachineSpec::scaled(sockets, cps),
                latency: LatencyTable::xeon_e5_4620(),
                cost: CostModel::xeon(),
                pinning: PinningPolicy::Compact,
            };
            for kind in [PolicyKind::Hybrid, PolicyKind::HybridSocketFirst] {
                let a = simulate(&app, kind, p, &cfg);
                let b = simulate(&app, kind, p, &cfg);
                assert_eq!(a.total_cycles, b.total_cycles, "{} p={p}", kind.name());
                assert_eq!(a.counts, b.counts, "{} p={p}", kind.name());
                assert_eq!(a.socket_affinity, b.socket_affinity, "{} p={p}", kind.name());
                assert_eq!(
                    (a.local_steals, a.remote_steals),
                    (b.local_steals, b.remote_steals),
                    "{} p={p}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn flat_pinning_makes_socket_affinity_perfect() {
        // Every worker on one socket (p <= cores_per_socket under compact
        // pinning): the same-socket fraction is 1 by construction.
        let app = tiny_app(true, 3);
        let cfg = SimConfig::xeon();
        let r = simulate(&app, PolicyKind::Stealing, 4, &cfg);
        assert!(r.socket_affinity.iter().all(|&f| (f - 1.0).abs() < 1e-12));
        assert_eq!(r.remote_steals, 0);
    }

    #[test]
    fn counts_accumulate_across_phases() {
        let app = tiny_app(true, 3);
        let cfg = SimConfig::xeon();
        let r = simulate(&app, PolicyKind::Static, 4, &cfg);
        let expected: u64 = app.loops[0].total_accesses() * 3;
        assert_eq!(r.counts.total(), expected);
    }

    #[test]
    fn per_phase_cycles_sum_to_total() {
        let app = tiny_app(true, 4);
        let cfg = SimConfig::xeon();
        let r = simulate(&app, PolicyKind::Guided, 4, &cfg);
        let sum: f64 = r.per_phase_cycles.iter().sum();
        assert!((sum - r.total_cycles).abs() < 1e-6 * r.total_cycles.max(1.0));
    }
}
