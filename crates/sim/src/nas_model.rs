//! Workload models of the five NAS kernels (Figure 3 / Figure 4 inputs).
//!
//! These are *models*, not the kernels themselves (the real Rust ports live
//! in `parloop-nas` and run on the threaded runtime): each kernel is
//! characterized by its parallel-loop structure — loop lengths, per-
//! iteration CPU work, and memory footprint/reuse pattern — scaled down so
//! a full Figure 3 sweep simulates in seconds. What the models preserve,
//! per kernel, is the property the paper's discussion hinges on:
//!
//! * **ep** — embarrassingly parallel, compute-bound, almost no memory
//!   traffic: every scheme scales; scheduling overhead is negligible.
//! * **mg** — V-cycles over a grid hierarchy: large loops with heavy reuse
//!   at the top levels plus *small* loops at coarse levels where per-loop
//!   fork/steal overheads dominate (where OpenMP's cheap static fork wins).
//! * **cg** — repeated sparse mat-vec: mildly irregular row costs, heavy
//!   reuse of the source vector, plus tiny reduction loops every
//!   iteration.
//! * **ft** — dimension-sweep FFT passes: one contiguous pass and two
//!   large-stride passes per step over a multi-socket-sized array; reuse
//!   across steps only pays off if iterations stay put.
//! * **is** — bucket sort: block reads of keys with scattered writes into
//!   shared buckets (invalidation traffic), light CPU per key.

use std::sync::Arc;

use crate::workload::{
    blocked_offsets, AccessPattern, AddressSpace, AppModel, CostProfile, LoopModel,
};

/// The five NAS kernels the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NasKernel {
    Ep,
    Mg,
    Cg,
    Ft,
    Is,
}

impl NasKernel {
    pub const ALL: [NasKernel; 5] =
        [NasKernel::Mg, NasKernel::Ft, NasKernel::Ep, NasKernel::Is, NasKernel::Cg];

    pub fn name(self) -> &'static str {
        match self {
            NasKernel::Ep => "ep",
            NasKernel::Mg => "mg",
            NasKernel::Cg => "cg",
            NasKernel::Ft => "ft",
            NasKernel::Is => "is",
        }
    }
}

/// Deterministic per-iteration weights in `[lo, hi]` (splitmix-based).
fn jitter_weights(n: usize, lo: f64, hi: f64, salt: u64) -> Arc<Vec<f64>> {
    let mut v = Vec::with_capacity(n);
    for i in 0..n {
        let mut z = (i as u64).wrapping_add(salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        v.push(lo + (hi - lo) * u);
    }
    Arc::new(v)
}

/// Build the workload model for `kernel` at full (figure) scale.
pub fn nas_app(kernel: NasKernel) -> AppModel {
    nas_app_scaled(kernel, 1)
}

/// Look a kernel up by its paper name ("mg", "ft", "ep", "is", "cg") and
/// build its model shrunk by `shrink`.
pub fn nas_app_scaled_from_name(name: &str, shrink: usize) -> Option<AppModel> {
    NasKernel::ALL.into_iter().find(|k| k.name() == name).map(|k| nas_app_scaled(k, shrink))
}

/// Build the workload model shrunk by `shrink` (arrays, loop lengths and
/// outer counts divided) — used by tests to keep simulation cheap while
/// preserving each kernel's structure.
pub fn nas_app_scaled(kernel: NasKernel, shrink: usize) -> AppModel {
    let s = shrink.max(1);
    let outer_full = |full: usize| if s > 1 { 2 } else { full };
    let mut sp = AddressSpace::new();
    match kernel {
        NasKernel::Ep => {
            // One big balanced compute loop; tiny private scratch per
            // iteration (the Gaussian-pair tallies).
            let n = (512 / s).max(8);
            let scratch = sp.alloc(n * 512);
            AppModel {
                name: "ep".into(),
                loops: vec![LoopModel {
                    name: "ep-pairs",
                    n,
                    cpu: CostProfile::Uniform(180_000.0),
                    patterns: vec![AccessPattern::Block {
                        array: scratch,
                        offsets: blocked_offsets(n * 512, n, 1.0),
                        passes: 1,
                        write: true,
                    }],
                }],
                outer: outer_full(2),
                seq_between: 10_000.0,
            }
        }
        NasKernel::Mg => {
            // Four grid levels, halving iteration counts and footprints,
            // plus a tiny norm loop. Two sweeps (smooth + residual) per
            // level are folded into passes = 2.
            let levels: [(usize, usize); 4] = [
                ((512 / s).max(8), (24 << 20) / s),
                ((256 / s).max(8), (3 << 20) / s),
                ((128 / s).max(8), (384 << 10) / s),
                ((64 / s).max(8), (48 << 10) / s),
            ];
            let mut loops = Vec::new();
            for (i, &(n, bytes)) in levels.iter().enumerate() {
                let arr = sp.alloc(bytes);
                loops.push(LoopModel {
                    name: ["mg-l0", "mg-l1", "mg-l2", "mg-l3"][i],
                    n,
                    cpu: CostProfile::Uniform((bytes / n) as f64 / 8.0 * 1.8),
                    patterns: vec![AccessPattern::Block {
                        array: arr,
                        offsets: blocked_offsets(bytes, n, 1.0),
                        passes: 2,
                        write: true,
                    }],
                });
            }
            // Coarse-level norm: tiny loop, pure overhead test.
            loops.push(LoopModel {
                name: "mg-norm",
                n: 32,
                cpu: CostProfile::Uniform(900.0),
                patterns: vec![],
            });
            AppModel { name: "mg".into(), loops, outer: outer_full(6), seq_between: 5_000.0 }
        }
        NasKernel::Cg => {
            // Sparse mat-vec with jittered row cost + shared x-vector
            // gathers, then two small reductions per iteration.
            let n = (512 / s).max(8);
            let mbytes = (12 << 20) / s;
            let matrix = sp.alloc(mbytes);
            let xvec = sp.alloc((2 << 20) / s);
            let row_cost = jitter_weights(n, 14_000.0, 34_000.0, 0xC6);
            let mut loops = vec![LoopModel {
                name: "cg-matvec",
                n,
                cpu: CostProfile::PerIter(row_cost),
                patterns: vec![
                    AccessPattern::Block {
                        array: matrix,
                        offsets: blocked_offsets(mbytes, n, 1.0),
                        passes: 1,
                        write: false,
                    },
                    AccessPattern::SharedSample {
                        array: xvec,
                        touches: 48,
                        write: false,
                        salt: 0x51,
                    },
                ],
            }];
            for (name, salt) in [("cg-axpy", 0x52u64), ("cg-dot", 0x53)] {
                loops.push(LoopModel {
                    name: if name == "cg-axpy" { "cg-axpy" } else { "cg-dot" },
                    n: (64 / s).max(8),
                    cpu: CostProfile::Uniform(2_500.0),
                    patterns: vec![AccessPattern::SharedSample {
                        array: xvec,
                        touches: 16,
                        write: salt == 0x52,
                        salt,
                    }],
                });
            }
            AppModel { name: "cg".into(), loops, outer: outer_full(10), seq_between: 4_000.0 }
        }
        NasKernel::Ft => {
            // Dimension sweeps over a 24 MB complex grid: one contiguous
            // pass and two strided (transposed) passes per FT step.
            let bytes = (24 << 20) / s;
            let grid = sp.alloc(bytes);
            let n = (384 / s).max(8);
            let lines = (bytes / 64) as u64;
            let per_iter = (lines / n as u64) as u32;
            let mk_gather = |name: &'static str, step: u64| LoopModel {
                name,
                n,
                cpu: CostProfile::Uniform(per_iter as f64 * 14.0),
                patterns: vec![AccessPattern::Gather {
                    array: grid,
                    start_mul: 1,
                    step_lines: step,
                    count: per_iter,
                    write: true,
                }],
            };
            AppModel {
                name: "ft".into(),
                loops: vec![
                    LoopModel {
                        name: "ft-dim1",
                        n,
                        cpu: CostProfile::Uniform(per_iter as f64 * 14.0),
                        patterns: vec![AccessPattern::Block {
                            array: grid,
                            offsets: blocked_offsets(bytes, n, 1.0),
                            passes: 1,
                            write: true,
                        }],
                    },
                    mk_gather("ft-dim2", n as u64),
                    mk_gather("ft-dim3", (n * n / 64) as u64 | 1),
                ],
                outer: outer_full(4),
                seq_between: 8_000.0,
            }
        }
        NasKernel::Is => {
            // Histogram of keys into shared buckets, then ranked copy-out.
            let kbytes = (16 << 20) / s;
            let keys = sp.alloc(kbytes);
            let buckets = sp.alloc((1 << 20) / s);
            let out = sp.alloc(kbytes);
            let n = (384 / s).max(8);
            AppModel {
                name: "is".into(),
                loops: vec![
                    LoopModel {
                        name: "is-hist",
                        n,
                        cpu: CostProfile::Uniform(9_000.0),
                        patterns: vec![
                            AccessPattern::Block {
                                array: keys,
                                offsets: blocked_offsets(kbytes, n, 1.0),
                                passes: 1,
                                write: false,
                            },
                            AccessPattern::SharedSample {
                                array: buckets,
                                touches: 96,
                                write: true,
                                salt: 0x15,
                            },
                        ],
                    },
                    LoopModel {
                        name: "is-rank",
                        n,
                        cpu: CostProfile::Uniform(7_000.0),
                        patterns: vec![
                            AccessPattern::Block {
                                array: keys,
                                offsets: blocked_offsets(kbytes, n, 1.0),
                                passes: 1,
                                write: false,
                            },
                            AccessPattern::Gather {
                                array: out,
                                start_mul: 677,
                                step_lines: 131,
                                count: 256,
                                write: true,
                            },
                        ],
                    },
                ],
                outer: outer_full(6),
                seq_between: 6_000.0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{sequential_time, simulate, SimConfig};
    use crate::policy::PolicyKind;

    #[test]
    fn all_kernels_build_and_have_work() {
        for k in NasKernel::ALL {
            let app = nas_app(k);
            assert!(!app.loops.is_empty(), "{}", k.name());
            assert!(app.total_iterations() > 0);
            assert!(app.loops.iter().any(|l| l.cpu_total() > 0.0));
        }
    }

    #[test]
    fn kernel_names_match_paper() {
        let names: Vec<_> = NasKernel::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["mg", "ft", "ep", "is", "cg"]);
    }

    #[test]
    fn ep_scales_nearly_linearly_for_everyone() {
        let app = nas_app_scaled(NasKernel::Ep, 4);
        let cfg = SimConfig::xeon();
        for kind in [PolicyKind::Hybrid, PolicyKind::Static, PolicyKind::Stealing] {
            let t1 = simulate(&app, kind, 1, &cfg).total_cycles;
            let t8 = simulate(&app, kind, 8, &cfg).total_cycles;
            let s = t1 / t8;
            assert!(s > 6.0, "{}: ep speedup {s:.2} too low", kind.name());
        }
    }

    #[test]
    fn work_efficiency_reasonable_for_all_kernels() {
        let cfg = SimConfig::xeon();
        for k in NasKernel::ALL {
            let app = nas_app_scaled(k, 8);
            let ts = sequential_time(&app, &cfg);
            for kind in [PolicyKind::Hybrid, PolicyKind::Static, PolicyKind::Stealing] {
                let t1 = simulate(&app, kind, 1, &cfg).total_cycles;
                let eff = ts / t1;
                assert!(
                    eff > 0.7 && eff <= 1.001,
                    "{} {}: efficiency {eff:.3}",
                    k.name(),
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn jitter_weights_are_bounded_and_deterministic() {
        let a = jitter_weights(100, 2.0, 5.0, 9);
        let b = jitter_weights(100, 2.0, 5.0, 9);
        assert_eq!(a, b);
        assert!(a.iter().all(|&w| (2.0..=5.0).contains(&w)));
        let mean = a.iter().sum::<f64>() / 100.0;
        assert!(mean > 2.8 && mean < 4.2, "mean {mean}");
    }
}
