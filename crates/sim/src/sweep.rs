//! Structured scheme × worker-count sweeps.
//!
//! The figure harnesses all follow one pattern: fix a workload, vary the
//! scheme and `P`, report `T_s`, `T_1`, `T_P` and derived metrics. This
//! module packages that pattern as data (so downstream users can consume
//! sweeps programmatically or export CSV) instead of leaving it embedded
//! in binary printouts.

use crate::engine::{sequential_time, simulate, SimConfig, SimResult};
use crate::policy::PolicyKind;
use crate::workload::AppModel;

/// One (scheme, P) cell of a sweep.
#[derive(Debug, Clone)]
pub struct SweepCell {
    pub kind: PolicyKind,
    pub workers: usize,
    pub cycles: f64,
    pub affinity: f64,
}

/// A full sweep over schemes and worker counts for one workload.
#[derive(Debug, Clone)]
pub struct Sweep {
    pub app_name: String,
    /// Sequential baseline `T_s` (no parallel constructs, no overheads).
    pub ts: f64,
    /// One-core time per scheme, in `kinds` order.
    pub t1: Vec<f64>,
    pub kinds: Vec<PolicyKind>,
    pub workers: Vec<usize>,
    /// Row-major: `cells[kind_index][worker_index]`.
    pub cells: Vec<Vec<SweepCell>>,
}

impl Sweep {
    /// Run the sweep (the expensive part: `kinds × workers` simulations).
    pub fn run(app: &AppModel, kinds: &[PolicyKind], workers: &[usize], cfg: &SimConfig) -> Sweep {
        let ts = sequential_time(app, cfg);
        let t1: Vec<f64> = kinds.iter().map(|&k| simulate(app, k, 1, cfg).total_cycles).collect();
        let cells = kinds
            .iter()
            .map(|&kind| {
                workers
                    .iter()
                    .map(|&p| {
                        let r: SimResult = simulate(app, kind, p, cfg);
                        SweepCell {
                            kind,
                            workers: p,
                            cycles: r.total_cycles,
                            affinity: r.mean_affinity(app),
                        }
                    })
                    .collect()
            })
            .collect();
        Sweep {
            app_name: app.name.clone(),
            ts,
            t1,
            kinds: kinds.to_vec(),
            workers: workers.to_vec(),
            cells,
        }
    }

    /// Work efficiency `T_s / T_1` for scheme row `k`.
    pub fn work_efficiency(&self, k: usize) -> f64 {
        self.ts / self.t1[k]
    }

    /// Scalability `T_1 / T_P` for cell `(k, p_ix)` (the paper's Figure 1
    /// metric).
    pub fn scalability(&self, k: usize, p_ix: usize) -> f64 {
        self.t1[k] / self.cells[k][p_ix].cycles
    }

    /// Speedup `T_s / T_P` for cell `(k, p_ix)` (the paper's Figure 3
    /// metric).
    pub fn speedup(&self, k: usize, p_ix: usize) -> f64 {
        self.ts / self.cells[k][p_ix].cycles
    }

    /// The scheme with the best time at worker count index `p_ix`.
    pub fn winner_at(&self, p_ix: usize) -> PolicyKind {
        let mut best = (f64::INFINITY, self.kinds[0]);
        for (k, row) in self.cells.iter().enumerate() {
            if row[p_ix].cycles < best.0 {
                best = (row[p_ix].cycles, self.kinds[k]);
            }
        }
        best.1
    }

    /// Render as CSV: `scheme,workers,cycles,affinity,scalability,speedup`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("scheme,workers,cycles,affinity,scalability,speedup\n");
        for (k, row) in self.cells.iter().enumerate() {
            for (p_ix, cell) in row.iter().enumerate() {
                out.push_str(&format!(
                    "{},{},{:.1},{:.6},{:.4},{:.4}\n",
                    cell.kind.name(),
                    cell.workers,
                    cell.cycles,
                    cell.affinity,
                    self.scalability(k, p_ix),
                    self.speedup(k, p_ix),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro_model::{micro_app, MicroParams};

    fn tiny_sweep() -> Sweep {
        let app = micro_app(MicroParams::small_for_tests(true));
        Sweep::run(
            &app,
            &[PolicyKind::Hybrid, PolicyKind::Static, PolicyKind::Stealing],
            &[1, 4, 8],
            &SimConfig::xeon(),
        )
    }

    #[test]
    fn sweep_shape_and_metrics() {
        let s = tiny_sweep();
        assert_eq!(s.cells.len(), 3);
        assert_eq!(s.cells[0].len(), 3);
        for k in 0..3 {
            let eff = s.work_efficiency(k);
            assert!(eff > 0.5 && eff <= 1.001, "efficiency {eff}");
            // Scalability at P=1 must be ~1 (same T1).
            assert!((s.scalability(k, 0) - 1.0).abs() < 1e-9);
            // More workers never hurt much in this balanced tiny app.
            assert!(s.scalability(k, 2) > 1.5);
        }
    }

    #[test]
    fn winner_is_a_swept_kind() {
        let s = tiny_sweep();
        let w = s.winner_at(2);
        assert!(s.kinds.contains(&w));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let s = tiny_sweep();
        let csv = s.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 3 * 3);
        assert!(lines[0].starts_with("scheme,workers"));
        assert!(lines[1].starts_with("hybrid,1,"));
    }
}
