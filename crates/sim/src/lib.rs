//! Virtual-time discrete-event simulator for the `parloop` reproduction.
//!
//! The paper's evaluation machine — a 32-core, four-socket Xeon E5-4620 —
//! is not available here (the host exposes a single core), so every timing
//! figure is regenerated on a *modeled* machine instead:
//!
//! * workers are virtual cores with individual clocks, pinned compactly to
//!   the topology from `parloop-topo`;
//! * every scheme the paper compares is implemented as a scheduling
//!   [`policy`] over virtual time, the hybrid one reusing the exact
//!   [`ClaimWalker`](parloop_core::ClaimWalker) the threaded runtime runs;
//! * iteration costs combine modeled CPU cycles with memory latencies from
//!   the `parloop-simcache` hierarchy, whose state persists across loops —
//!   so loop affinity turns into cache hits and NUMA locality exactly as
//!   the paper argues;
//! * scheduling overheads (steals, shared-cursor grabs, claims, barriers)
//!   come from an explicit [`CostModel`](costs::CostModel).
//!
//! The figure harnesses in `parloop-bench` sweep worker counts and schemes
//! over the [microbenchmark](micro_model) and [NAS kernel](nas_model)
//! models to regenerate Figures 1–4.

pub mod costs;
pub mod engine;
pub mod micro_model;
pub mod nas_model;
pub mod policy;
pub mod sweep;
pub mod workload;

pub use costs::CostModel;
pub use engine::{
    sequential_time, simulate, simulate_traced, ChunkEvent, LoopTrace, SimConfig, SimResult,
};
pub use micro_model::{micro_app, MicroParams};
pub use nas_model::{nas_app, nas_app_scaled, nas_app_scaled_from_name, NasKernel};
pub use policy::{Action, Policy, PolicyKind};
pub use sweep::{Sweep, SweepCell};
pub use workload::{
    blocked_offsets, weighted_offsets, AccessPattern, AddressSpace, AppModel, ArraySpec,
    CostProfile, LoopModel,
};
