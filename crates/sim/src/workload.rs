//! Workload models: what one loop iteration *does*, as data.
//!
//! The simulator does not run real kernels; it runs *models* — per
//! iteration, a CPU-cycle cost plus a stream of memory accesses issued
//! against the [`MemoryHierarchy`]. The paper's microbenchmarks are modeled
//! exactly (private per-iteration blocks, stride-touched, repeated across
//! outer phases); the NAS kernels are modeled by their loop structure and
//! footprint (see `nas_model`).

use std::sync::Arc;

use parloop_simcache::{AllocInfo, MemoryHierarchy};

/// A modeled array: a base address and length inside the simulated
/// address space (used for NUMA homing and line addressing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArraySpec {
    pub base: u64,
    pub len: usize,
}

impl ArraySpec {
    #[inline]
    pub fn alloc_info(&self) -> AllocInfo {
        AllocInfo::new(self.base, self.len)
    }

    /// Number of 64-byte lines the array spans.
    #[inline]
    pub fn lines(&self) -> u64 {
        (self.len as u64).div_ceil(64)
    }

    #[inline]
    pub fn first_line(&self) -> u64 {
        self.base / 64
    }
}

/// Bump allocator for the simulated address space (page-aligned, disjoint).
#[derive(Debug, Default)]
pub struct AddressSpace {
    next: u64,
}

impl AddressSpace {
    pub fn new() -> Self {
        AddressSpace { next: 1 << 12 }
    }

    /// Allocate `bytes`, page-aligned, with a guard gap.
    pub fn alloc(&mut self, bytes: usize) -> ArraySpec {
        let base = self.next;
        let span = (bytes as u64).div_ceil(4096) * 4096;
        self.next = base + span + 4096;
        ArraySpec { base, len: bytes }
    }
}

/// Per-iteration CPU-cycle cost profile (excludes memory latency).
#[derive(Debug, Clone, PartialEq)]
pub enum CostProfile {
    /// Every iteration costs the same.
    Uniform(f64),
    /// Linearly increasing from `min` (iteration 0) to `max` (iteration
    /// n−1) — the canonical unbalanced profile.
    LinearRamp { min: f64, max: f64 },
    /// Explicit per-iteration costs.
    PerIter(Arc<Vec<f64>>),
}

impl CostProfile {
    /// Cycles for iteration `i` of `n`.
    pub fn cycles(&self, i: usize, n: usize) -> f64 {
        match self {
            CostProfile::Uniform(c) => *c,
            CostProfile::LinearRamp { min, max } => {
                if n <= 1 {
                    *min
                } else {
                    min + (max - min) * i as f64 / (n - 1) as f64
                }
            }
            CostProfile::PerIter(v) => v[i],
        }
    }

    /// Total cycles over all `n` iterations.
    pub fn total(&self, n: usize) -> f64 {
        (0..n).map(|i| self.cycles(i, n)).sum()
    }
}

/// Mix a 64-bit value (splitmix64 finalizer) — used for sampled accesses.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The memory-access stream of one loop iteration.
///
/// Accesses are issued at cache-line granularity; within-line element
/// accesses (always L1 hits) are folded into the CPU cost profile.
#[derive(Debug, Clone)]
pub enum AccessPattern {
    /// Iteration `i` owns the private byte range `offsets[i]` of `array`
    /// and walks it `passes` times (the paper's microbenchmark shape: each
    /// iteration strides over its own sub-array).
    Block {
        array: ArraySpec,
        /// Per-iteration `(byte_offset, bytes)` within the array.
        offsets: Arc<Vec<(u64, u32)>>,
        passes: u32,
        write: bool,
    },
    /// Iteration `i` touches `count` lines at `i·start_mul + k·step_lines`
    /// (mod array lines) — strided/transposed traversals (FT dimensions).
    Gather { array: ArraySpec, start_mul: u64, step_lines: u64, count: u32, write: bool },
    /// Iteration `i` touches `touches` pseudo-random lines of `array`
    /// (hash of `(i, k, salt)`) — shared structures like IS buckets or
    /// CG's source vector.
    SharedSample { array: ArraySpec, touches: u32, write: bool, salt: u64 },
}

impl AccessPattern {
    /// Issue iteration `i`'s accesses from `core`; return total memory
    /// cycles.
    pub fn mem_cost(&self, i: usize, core: usize, mem: &mut MemoryHierarchy) -> f64 {
        let mut cycles = 0.0;
        match self {
            AccessPattern::Block { array, offsets, passes, write } => {
                let (off, bytes) = offsets[i];
                let lo = array.base + off;
                let hi = lo + bytes as u64;
                let info = array.alloc_info();
                for _ in 0..*passes {
                    let mut a = lo & !63;
                    while a < hi {
                        let lvl = mem.access(core, a, *write, info);
                        cycles += mem.latency_of(lvl);
                        a += 64;
                    }
                }
            }
            AccessPattern::Gather { array, start_mul, step_lines, count, write } => {
                let lines = array.lines().max(1);
                let info = array.alloc_info();
                let base_line = array.first_line();
                let mut line = (i as u64).wrapping_mul(*start_mul) % lines;
                for _ in 0..*count {
                    let addr = (base_line + line) * 64;
                    let lvl = mem.access(core, addr, *write, info);
                    cycles += mem.latency_of(lvl);
                    line = (line + step_lines) % lines;
                }
            }
            AccessPattern::SharedSample { array, touches, write, salt } => {
                let lines = array.lines().max(1);
                let info = array.alloc_info();
                let base_line = array.first_line();
                for k in 0..*touches {
                    let h = mix((i as u64) << 20 ^ (k as u64) << 1 ^ salt);
                    let addr = (base_line + h % lines) * 64;
                    let lvl = mem.access(core, addr, *write, info);
                    cycles += mem.latency_of(lvl);
                }
            }
        }
        cycles
    }

    /// Number of line accesses iteration `i` issues (model introspection).
    pub fn accesses(&self, i: usize) -> u64 {
        match self {
            AccessPattern::Block { offsets, passes, .. } => {
                let (off, bytes) = offsets[i];
                let lo = off & !63;
                let hi = off + bytes as u64;
                (hi.div_ceil(64).saturating_sub(lo / 64)) * *passes as u64
            }
            AccessPattern::Gather { count, .. } => *count as u64,
            AccessPattern::SharedSample { touches, .. } => *touches as u64,
        }
    }
}

/// One parallel loop: `n` iterations, each with CPU cost and access
/// patterns.
#[derive(Debug, Clone)]
pub struct LoopModel {
    pub name: &'static str,
    pub n: usize,
    pub cpu: CostProfile,
    pub patterns: Vec<AccessPattern>,
}

impl LoopModel {
    /// Execute iteration `i` on `core`: returns its total cycles.
    pub fn iter_cost(&self, i: usize, core: usize, mem: &mut MemoryHierarchy) -> f64 {
        let mut c = self.cpu.cycles(i, self.n);
        for p in &self.patterns {
            c += p.mem_cost(i, core, mem);
        }
        c
    }

    /// Pure-CPU total (used in tests and calibration).
    pub fn cpu_total(&self) -> f64 {
        self.cpu.total(self.n)
    }

    /// Total line accesses per execution of this loop.
    pub fn total_accesses(&self) -> u64 {
        (0..self.n).map(|i| self.patterns.iter().map(|p| p.accesses(i)).sum::<u64>()).sum()
    }
}

/// An application: an outer sequential loop around a fixed sequence of
/// parallel loops (the iterative-application shape the paper targets).
#[derive(Debug, Clone)]
pub struct AppModel {
    pub name: String,
    /// Parallel loops executed once per outer iteration, in order.
    pub loops: Vec<LoopModel>,
    /// Outer sequential repetitions.
    pub outer: usize,
    /// Sequential cycles between consecutive parallel loops.
    pub seq_between: f64,
}

impl AppModel {
    /// Total parallel-loop iterations across the whole run.
    pub fn total_iterations(&self) -> usize {
        self.loops.iter().map(|l| l.n).sum::<usize>() * self.outer
    }
}

/// Split `total_bytes` into `n` per-iteration blocks: equal when
/// `ramp == 1.0`, otherwise linearly ramping so the largest block is
/// `ramp` times the smallest (the unbalanced microbenchmark).
///
/// Block boundaries are aligned to 64-byte lines (no two iterations share
/// a cache line — the paper's "arrays accessed by different parallel
/// iterations do not overlap in memory").
pub fn blocked_offsets(total_bytes: usize, n: usize, ramp: f64) -> Arc<Vec<(u64, u32)>> {
    assert!(n > 0 && ramp >= 1.0);
    // weights w_i = 1 + (ramp-1) * i/(n-1), scaled to sum to total.
    let weights: Vec<f64> = (0..n)
        .map(|i| if n == 1 { 1.0 } else { 1.0 + (ramp - 1.0) * i as f64 / (n - 1) as f64 })
        .collect();
    weighted_offsets(total_bytes, &weights)
}

/// Split `total_bytes` into `n = weights.len()` per-iteration blocks with
/// sizes proportional to `weights` (line-aligned; last block absorbs
/// rounding).
pub fn weighted_offsets(total_bytes: usize, weights: &[f64]) -> Arc<Vec<(u64, u32)>> {
    let n = weights.len();
    assert!(n > 0);
    let wsum: f64 = weights.iter().sum();
    let mut offsets = Vec::with_capacity(n);
    let mut off = 0u64;
    for (i, w) in weights.iter().enumerate() {
        let mut bytes = ((total_bytes as f64) * w / wsum / 64.0).round() as u64 * 64;
        // Never overshoot the array: per-block round-up across many small
        // blocks can otherwise push `off` past `total_bytes`. The last
        // block absorbs whatever rounding slack remains.
        bytes = bytes.min(total_bytes as u64 - off);
        if i == n - 1 {
            bytes = total_bytes as u64 - off;
        }
        let bytes = bytes.min(u32::MAX as u64) as u32;
        offsets.push((off, bytes));
        off += bytes as u64;
    }
    Arc::new(offsets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parloop_topo::{LatencyTable, MachineSpec};

    #[test]
    fn address_space_disjoint_and_aligned() {
        let mut sp = AddressSpace::new();
        let a = sp.alloc(1000);
        let b = sp.alloc(5000);
        assert_eq!(a.base % 4096, 0);
        assert_eq!(b.base % 4096, 0);
        assert!(a.base + a.len as u64 <= b.base);
    }

    #[test]
    fn cost_profiles() {
        assert_eq!(CostProfile::Uniform(5.0).cycles(3, 10), 5.0);
        let ramp = CostProfile::LinearRamp { min: 10.0, max: 30.0 };
        assert_eq!(ramp.cycles(0, 11), 10.0);
        assert_eq!(ramp.cycles(10, 11), 30.0);
        assert_eq!(ramp.cycles(5, 11), 20.0);
        assert!((ramp.total(11) - 220.0).abs() < 1e-9);
        let per = CostProfile::PerIter(Arc::new(vec![1.0, 2.0, 4.0]));
        assert_eq!(per.cycles(2, 3), 4.0);
        assert_eq!(per.total(3), 7.0);
    }

    #[test]
    fn blocked_offsets_cover_array() {
        for ramp in [1.0, 4.0, 7.0] {
            let offs = blocked_offsets(1 << 20, 64, ramp);
            assert_eq!(offs.len(), 64);
            let mut expect = 0u64;
            for &(off, bytes) in offs.iter() {
                assert_eq!(off, expect);
                expect += bytes as u64;
            }
            assert_eq!(expect, 1 << 20);
        }
    }

    #[test]
    fn blocked_offsets_roundup_does_not_overshoot() {
        // Many equal blocks whose ideal size rounds up (10240/63/64 ≈ 2.54
        // → 3 lines each): the cumulative offset used to run past the end
        // of the array and underflow in the final block.
        for (total, n) in [(10240usize, 63usize), (8192, 63), (130048, 63), (9216, 5)] {
            let offs = blocked_offsets(total, n, 1.0);
            let mut expect = 0u64;
            for &(off, bytes) in offs.iter() {
                assert_eq!(off, expect);
                expect += bytes as u64;
            }
            assert_eq!(expect, total as u64, "total {total} n {n}");
        }
    }

    #[test]
    fn blocked_offsets_balanced_are_equal() {
        let offs = blocked_offsets(64 * 1024, 64, 1.0);
        let sizes: Vec<u32> = offs.iter().map(|&(_, b)| b).collect();
        assert!(sizes.iter().all(|&s| s == sizes[0]));
    }

    #[test]
    fn blocked_offsets_ramp_is_monotone() {
        let offs = blocked_offsets(1 << 20, 32, 6.0);
        for w in offs.windows(2) {
            assert!(w[1].1 >= w[0].1, "block sizes must ramp up");
        }
        let first = offs.first().unwrap().1 as f64;
        let last = offs.last().unwrap().1 as f64;
        assert!(last / first > 4.0, "ramp {last}/{first} too shallow");
    }

    #[test]
    fn block_pattern_issues_expected_lines() {
        let mut sp = AddressSpace::new();
        let arr = sp.alloc(64 * 100);
        let pat = AccessPattern::Block {
            array: arr,
            offsets: blocked_offsets(64 * 100, 10, 1.0),
            passes: 2,
            write: false,
        };
        // 10 lines per block, 2 passes.
        assert_eq!(pat.accesses(0), 20);
        let mut mem =
            MemoryHierarchy::new(MachineSpec::tiny_for_tests(), LatencyTable::xeon_e5_4620());
        let cycles = pat.mem_cost(0, 0, &mut mem);
        assert!(cycles > 0.0);
        assert_eq!(mem.total_counts().total(), 20);
    }

    #[test]
    fn repeated_block_access_becomes_cache_hits() {
        let mut sp = AddressSpace::new();
        let arr = sp.alloc(4096);
        let pat = AccessPattern::Block {
            array: arr,
            offsets: Arc::new(vec![(0, 4096)]),
            passes: 1,
            write: false,
        };
        let mut mem = MemoryHierarchy::xeon();
        let cold = pat.mem_cost(0, 0, &mut mem);
        let warm = pat.mem_cost(0, 0, &mut mem);
        assert!(warm < cold / 5.0, "warm {warm} should be far below cold {cold}");
    }

    #[test]
    fn gather_wraps_modulo_array() {
        let mut sp = AddressSpace::new();
        let arr = sp.alloc(64 * 8);
        let pat = AccessPattern::Gather {
            array: arr,
            start_mul: 3,
            step_lines: 5,
            count: 100,
            write: false,
        };
        assert_eq!(pat.accesses(7), 100);
        let mut mem = MemoryHierarchy::xeon();
        pat.mem_cost(7, 0, &mut mem);
        assert_eq!(mem.total_counts().total(), 100);
    }

    #[test]
    fn shared_sample_is_deterministic() {
        let mut sp = AddressSpace::new();
        let arr = sp.alloc(1 << 16);
        let pat = AccessPattern::SharedSample { array: arr, touches: 50, write: false, salt: 99 };
        let mut m1 = MemoryHierarchy::xeon();
        let mut m2 = MemoryHierarchy::xeon();
        let c1 = pat.mem_cost(3, 0, &mut m1);
        let c2 = pat.mem_cost(3, 0, &mut m2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn loop_model_totals() {
        let mut sp = AddressSpace::new();
        let arr = sp.alloc(64 * 64);
        let lm = LoopModel {
            name: "t",
            n: 8,
            cpu: CostProfile::Uniform(10.0),
            patterns: vec![AccessPattern::Block {
                array: arr,
                offsets: blocked_offsets(64 * 64, 8, 1.0),
                passes: 1,
                write: true,
            }],
        };
        assert_eq!(lm.cpu_total(), 80.0);
        assert_eq!(lm.total_accesses(), 64);
        let app = AppModel { name: "app".into(), loops: vec![lm], outer: 3, seq_between: 0.0 };
        assert_eq!(app.total_iterations(), 24);
    }
}
