//! The six scheduling schemes as virtual-time step machines.
//!
//! Each policy answers one question — "worker `w` is idle *now*; what does
//! it do next?" — with an [`Action`]: run a chunk (plus the scheduling
//! overhead paid to obtain it), stall (a failed steal / backoff), or
//! finish. The engine advances whichever worker's clock is smallest, so
//! interleavings play out in virtual time.
//!
//! The hybrid policy reuses [`parloop_core::ClaimWalker`] — the *same*
//! claim-sequence code the threaded runtime executes — so the simulator
//! and the real scheduler cannot drift apart on the heuristic.

use std::collections::VecDeque;

use parloop_core::{block_bounds, locality_earmark, ClaimWalker};
use parloop_topo::TopologyMap;

use crate::costs::CostModel;

/// What an idle worker does next.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Execute iterations `lo..hi`, having paid `overhead` cycles of
    /// scheduling cost to obtain them.
    Run { lo: usize, hi: usize, overhead: f64 },
    /// Burn `.0` cycles without obtaining work (failed steal, claim, …).
    Stall(f64),
    /// This worker will receive no more work from this loop.
    Finished,
}

/// Which scheme to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// The paper's hybrid scheme.
    Hybrid,
    /// OpenMP static.
    Static,
    /// FastFlow static (fixed blocks via shared counter).
    StaticSharing,
    /// OpenMP dynamic (fixed chunks via shared cursor).
    WorkSharing,
    /// OpenMP guided (decreasing chunks via shared cursor).
    Guided,
    /// Vanilla Cilk work stealing.
    Stealing,
    /// The hybrid scheme with `R = next_pow2(P · factor)` partitions
    /// (Theorem 5's general `R`; the A3 ablation).
    HybridOversub(u8),
    /// The hybrid scheme made topology-aware: claim walks anchored at a
    /// NUMA-earmarked partition and two-phase socket-first stealing
    /// (same-socket victims before remote ones). Coincides with
    /// [`Hybrid`](PolicyKind::Hybrid) on a flat (single-socket) topology.
    HybridSocketFirst,
    /// OpenMP `schedule(static, chunk)`: deterministic round-robin chunks.
    StaticCyclic(u16),
    /// No parallel constructs at all (the `T_s` baseline).
    Sequential,
}

impl PolicyKind {
    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Hybrid => "hybrid",
            PolicyKind::Static => "omp_static",
            PolicyKind::StaticSharing => "ff_static",
            PolicyKind::WorkSharing => "omp_dynamic",
            PolicyKind::Guided => "omp_guided",
            PolicyKind::Stealing => "vanilla",
            PolicyKind::HybridOversub(_) => "hybrid_oversub",
            PolicyKind::HybridSocketFirst => "hybrid_sf",
            PolicyKind::StaticCyclic(_) => "omp_static_c",
            PolicyKind::Sequential => "sequential",
        }
    }

    /// The schemes the paper's figures compare.
    pub fn roster() -> [PolicyKind; 6] {
        [
            PolicyKind::Hybrid,
            PolicyKind::Static,
            PolicyKind::WorkSharing,
            PolicyKind::Guided,
            PolicyKind::Stealing,
            PolicyKind::StaticSharing,
        ]
    }

    /// Team schemes fork all `P` workers into the loop and barrier at the
    /// end (OpenMP/FastFlow); non-team schemes discover the loop by
    /// stealing and end when the last chunk completes.
    pub fn is_team(self) -> bool {
        matches!(
            self,
            PolicyKind::Static
                | PolicyKind::StaticCyclic(_)
                | PolicyKind::StaticSharing
                | PolicyKind::WorkSharing
                | PolicyKind::Guided
        )
    }
}

/// A policy instance for one loop execution.
pub trait Policy {
    fn next(&mut self, w: usize) -> Action;

    /// Successful steals so far, classified against the topology as
    /// `(same-socket, remote)`. Schemes without steals report `(0, 0)`.
    fn steal_counts(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// Build a policy for a loop of `n` iterations on `p` workers.
///
/// `chunk_hint` is the paper's adjusted chunk `min(2048, N/8P)`; it is the
/// fixed chunk for `WorkSharing`, the inner grain for `Stealing`/`Hybrid`,
/// and the minimum chunk for `Guided` uses 1 (OpenMP default).
/// `seed` models run-to-run scheduling nondeterminism (victim selection,
/// arrival order): the engine passes a fresh value per loop *instance*, so
/// consecutive loops of an iterative application do not replay identical
/// dynamic schedules — on real machines they never do, which is exactly
/// why non-static schemes lose affinity (paper, Figure 2).
///
/// `topo` is the worker → socket map the engine derives from its pinned
/// virtual cores; it classifies steals as local/remote for every stealing
/// scheme and drives victim ordering plus claim-anchor earmarking for
/// [`PolicyKind::HybridSocketFirst`].
pub fn make_policy(
    kind: PolicyKind,
    n: usize,
    p: usize,
    chunk_hint: usize,
    cost: CostModel,
    seed: u64,
    topo: &TopologyMap,
) -> Box<dyn Policy> {
    match kind {
        PolicyKind::Sequential => Box::new(SequentialPolicy { n, done: false }),
        PolicyKind::Static => Box::new(StaticPolicy::new(n, p)),
        PolicyKind::StaticSharing => Box::new(StaticSharingPolicy::new(n, p, cost)),
        PolicyKind::WorkSharing => Box::new(SharingPolicy::fixed(n, p, chunk_hint, cost)),
        PolicyKind::Guided => Box::new(SharingPolicy::guided(n, p, 1, cost)),
        PolicyKind::Stealing => Box::new(StealingPolicy::new(n, p, chunk_hint, cost, seed, topo)),
        PolicyKind::Hybrid => {
            let shape = HybridShape { oversub: 1, socket_first: false };
            Box::new(HybridPolicy::new(n, p, chunk_hint, cost, seed, shape, topo))
        }
        PolicyKind::HybridOversub(f) => {
            let shape = HybridShape { oversub: f.max(1) as usize, socket_first: false };
            Box::new(HybridPolicy::new(n, p, chunk_hint, cost, seed, shape, topo))
        }
        PolicyKind::HybridSocketFirst => {
            let shape = HybridShape { oversub: 1, socket_first: true };
            Box::new(HybridPolicy::new(n, p, chunk_hint, cost, seed, shape, topo))
        }
        PolicyKind::StaticCyclic(chunk) => {
            Box::new(StaticCyclicPolicy::new(n, p, chunk.max(1) as usize))
        }
    }
}

/// OpenMP `schedule(static, chunk)`: worker `w` owns chunks `w, w+P, …`.
struct StaticCyclicPolicy {
    n: usize,
    p: usize,
    chunk: usize,
    next_chunk: Vec<usize>,
}

impl StaticCyclicPolicy {
    fn new(n: usize, p: usize, chunk: usize) -> Self {
        StaticCyclicPolicy { n, p, chunk, next_chunk: (0..p).collect() }
    }
}

impl Policy for StaticCyclicPolicy {
    fn next(&mut self, w: usize) -> Action {
        let chunks = self.n.div_ceil(self.chunk);
        let c = self.next_chunk[w];
        if c >= chunks {
            return Action::Finished;
        }
        self.next_chunk[w] = c + self.p;
        let lo = c * self.chunk;
        let hi = (lo + self.chunk).min(self.n);
        Action::Run { lo, hi, overhead: 0.0 }
    }
}

// ------------------------------------------------------------------
// Sequential
// ------------------------------------------------------------------

struct SequentialPolicy {
    n: usize,
    done: bool,
}

impl Policy for SequentialPolicy {
    fn next(&mut self, w: usize) -> Action {
        if w != 0 || self.done {
            return Action::Finished;
        }
        self.done = true;
        if self.n == 0 {
            Action::Finished
        } else {
            Action::Run { lo: 0, hi: self.n, overhead: 0.0 }
        }
    }
}

// ------------------------------------------------------------------
// OpenMP static
// ------------------------------------------------------------------

struct StaticPolicy {
    n: usize,
    p: usize,
    taken: Vec<bool>,
}

impl StaticPolicy {
    fn new(n: usize, p: usize) -> Self {
        StaticPolicy { n, p, taken: vec![false; p] }
    }
}

impl Policy for StaticPolicy {
    fn next(&mut self, w: usize) -> Action {
        if self.taken[w] {
            return Action::Finished;
        }
        self.taken[w] = true;
        let r = block_bounds(self.n, self.p, w);
        if r.is_empty() {
            Action::Finished
        } else {
            Action::Run { lo: r.start, hi: r.end, overhead: 0.0 }
        }
    }
}

// ------------------------------------------------------------------
// Shared-cursor schemes (omp_dynamic / omp_guided / ff_static)
// ------------------------------------------------------------------

enum CursorMode {
    Fixed(usize),
    Guided { min_chunk: usize },
}

struct SharingPolicy {
    n: usize,
    p: usize,
    cursor: usize,
    mode: CursorMode,
    cost: CostModel,
}

impl SharingPolicy {
    fn fixed(n: usize, p: usize, chunk: usize, cost: CostModel) -> Self {
        SharingPolicy { n, p, cursor: 0, mode: CursorMode::Fixed(chunk.max(1)), cost }
    }

    fn guided(n: usize, p: usize, min_chunk: usize, cost: CostModel) -> Self {
        SharingPolicy { n, p, cursor: 0, mode: CursorMode::Guided { min_chunk }, cost }
    }
}

impl Policy for SharingPolicy {
    fn next(&mut self, _w: usize) -> Action {
        if self.cursor >= self.n {
            return Action::Finished;
        }
        let remaining = self.n - self.cursor;
        let chunk = match self.mode {
            CursorMode::Fixed(c) => c,
            CursorMode::Guided { min_chunk } => (remaining / self.p).max(min_chunk),
        }
        .min(remaining);
        let lo = self.cursor;
        self.cursor += chunk;
        Action::Run { lo, hi: lo + chunk, overhead: self.cost.grab(self.p) }
    }
}

/// FastFlow static: `P` fixed blocks handed out through a shared counter.
struct StaticSharingPolicy {
    n: usize,
    p: usize,
    next_block: usize,
    cost: CostModel,
}

impl StaticSharingPolicy {
    fn new(n: usize, p: usize, cost: CostModel) -> Self {
        StaticSharingPolicy { n, p, next_block: 0, cost }
    }
}

impl Policy for StaticSharingPolicy {
    fn next(&mut self, _w: usize) -> Action {
        while self.next_block < self.p {
            let b = self.next_block;
            self.next_block += 1;
            let r = block_bounds(self.n, self.p, b);
            if !r.is_empty() {
                return Action::Run { lo: r.start, hi: r.end, overhead: self.cost.grab(self.p) };
            }
        }
        Action::Finished
    }
}

// ------------------------------------------------------------------
// Work stealing (vanilla cilk_for) — shared deque machinery
// ------------------------------------------------------------------

/// Per-worker deques of iteration ranges plus randomized stealing; also
/// the substrate under the hybrid policy's inner loops.
struct DequeSet {
    deques: Vec<VecDeque<(usize, usize)>>,
    grain: usize,
    /// Iterations still queued in some deque (not yet handed to a worker).
    queued: usize,
    rng: u64,
    cost: CostModel,
    /// Worker → socket, for classifying steals as local or remote.
    socket_of: Vec<usize>,
    /// Per-worker `(same-socket victims, remote victims)` sweep lists;
    /// built only for socket-first stealing (empty under uniform).
    victims: Vec<(Vec<usize>, Vec<usize>)>,
    local_steals: u64,
    remote_steals: u64,
}

impl DequeSet {
    fn new(
        p: usize,
        grain: usize,
        cost: CostModel,
        seed: u64,
        topo: &TopologyMap,
        socket_first: bool,
    ) -> Self {
        let socket_of: Vec<usize> = (0..p).map(|w| topo.socket_of(w)).collect();
        let victims = if socket_first {
            (0..p)
                .map(|w| (0..p).filter(|&v| v != w).partition(|&v| socket_of[v] == socket_of[w]))
                .collect()
        } else {
            Vec::new()
        };
        DequeSet {
            deques: vec![VecDeque::new(); p],
            grain: grain.max(1),
            queued: 0,
            rng: seed | 1,
            cost,
            socket_of,
            victims,
            local_steals: 0,
            remote_steals: 0,
        }
    }

    fn push(&mut self, w: usize, lo: usize, hi: usize) {
        debug_assert!(lo < hi);
        self.queued += hi - lo;
        self.deques[w].push_back((lo, hi));
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Pop from own deque (bottom), splitting down to the grain; the right
    /// halves stay stealable. Returns a run action if work was present.
    fn pop_own(&mut self, w: usize) -> Option<Action> {
        let (lo, hi) = self.deques[w].pop_back()?;
        self.queued -= hi - lo;
        Some(self.split_down(w, lo, hi, 0.0))
    }

    /// One steal attempt at a uniformly random victim; `Run` on success,
    /// `Stall` on failure, `None` if no work exists anywhere.
    fn steal(&mut self, w: usize) -> Option<Action> {
        if self.queued == 0 {
            return None;
        }
        let p = self.deques.len();
        let victim = (self.next_rand() % p as u64) as usize;
        if victim != w {
            if let Some((lo, hi)) = self.deques[victim].pop_front() {
                self.queued -= hi - lo;
                self.note_steal(w, victim);
                return Some(self.split_down(w, lo, hi, self.cost.steal_success));
            }
        }
        Some(Action::Stall(self.cost.steal_attempt))
    }

    /// One two-phase localized steal sweep: same-socket victims first from
    /// a random start, then remote ones, mirroring the threaded runtime.
    /// Probing an empty deque is a cheap load there, so only the terminal
    /// outcome is charged: `steal_success` on a hit, one `steal_attempt`
    /// for a whole failed sweep (the runtime's `StealFailed` + backoff).
    fn steal_socket_first(&mut self, w: usize) -> Option<Action> {
        if self.queued == 0 {
            return None;
        }
        for phase in 0..2 {
            let len = if phase == 0 { self.victims[w].0.len() } else { self.victims[w].1.len() };
            if len == 0 {
                continue;
            }
            let start = (self.next_rand() % len as u64) as usize;
            for k in 0..len {
                let ix = (start + k) % len;
                let v = if phase == 0 { self.victims[w].0[ix] } else { self.victims[w].1[ix] };
                if let Some((lo, hi)) = self.deques[v].pop_front() {
                    self.queued -= hi - lo;
                    self.note_steal(w, v);
                    return Some(self.split_down(w, lo, hi, self.cost.steal_success));
                }
            }
        }
        Some(Action::Stall(self.cost.steal_attempt))
    }

    fn note_steal(&mut self, thief: usize, victim: usize) {
        if self.socket_of[thief] == self.socket_of[victim] {
            self.local_steals += 1;
        } else {
            self.remote_steals += 1;
        }
    }

    fn split_down(&mut self, w: usize, lo: usize, mut hi: usize, base: f64) -> Action {
        let mut overhead = base;
        while hi - lo > self.grain {
            let mid = lo + (hi - lo) / 2;
            self.push(w, mid, hi);
            overhead += self.cost.spawn;
            hi = mid;
        }
        Action::Run { lo, hi, overhead }
    }
}

struct StealingPolicy {
    set: DequeSet,
}

impl StealingPolicy {
    fn new(
        n: usize,
        p: usize,
        grain: usize,
        cost: CostModel,
        seed: u64,
        topo: &TopologyMap,
    ) -> Self {
        let mut set = DequeSet::new(p, grain, cost, seed, topo, false);
        if n > 0 {
            set.push(0, 0, n); // the initiator owns the whole range
        }
        StealingPolicy { set }
    }
}

impl Policy for StealingPolicy {
    fn next(&mut self, w: usize) -> Action {
        if let Some(a) = self.set.pop_own(w) {
            return a;
        }
        match self.set.steal(w) {
            Some(a) => a,
            None => Action::Finished,
        }
    }

    fn steal_counts(&self) -> (u64, u64) {
        (self.set.local_steals, self.set.remote_steals)
    }
}

// ------------------------------------------------------------------
// The hybrid scheme
// ------------------------------------------------------------------

/// Static shape of a hybrid-policy instance: Theorem 5's oversubscription
/// factor plus whether the topology-aware variant is in force.
#[derive(Debug, Clone, Copy)]
struct HybridShape {
    oversub: usize,
    socket_first: bool,
}

struct HybridPolicy {
    n: usize,
    r_parts: usize,
    claimed: Vec<bool>,
    walkers: Vec<ClaimWalker>,
    set: DequeSet,
    cost: CostModel,
    socket_first: bool,
}

impl HybridPolicy {
    fn new(
        n: usize,
        p: usize,
        grain: usize,
        cost: CostModel,
        seed: u64,
        shape: HybridShape,
        topo: &TopologyMap,
    ) -> Self {
        let r_parts = (p * shape.oversub).next_power_of_two();
        // Topology-aware anchors: worker w starts its claim walk at the
        // partition earmarked to its socket (NUMA-blocked ranges), not at
        // partition w. The XOR walk's coverage/termination proofs only
        // depend on the walk shape, so relabeling anchors is safe.
        let anchor = |w: usize| -> usize {
            if shape.socket_first && !topo.is_flat() {
                locality_earmark(topo.socket_table(), topo.sockets(), w, r_parts)
            } else {
                w % r_parts
            }
        };
        HybridPolicy {
            n,
            r_parts,
            claimed: vec![false; r_parts],
            walkers: (0..p).map(|w| ClaimWalker::with_start(anchor(w), r_parts)).collect(),
            set: DequeSet::new(p, grain, cost, seed, topo, shape.socket_first),
            cost,
            socket_first: shape.socket_first,
        }
    }
}

impl Policy for HybridPolicy {
    fn next(&mut self, w: usize) -> Action {
        // Inner per-partition loops are ordinary stealable ranges.
        if let Some(a) = self.set.pop_own(w) {
            return a;
        }
        // Claim walk: one claim attempt per call (each costs a fetch_or).
        if !self.walkers[w].finished() {
            let cand = self.walkers[w].candidate().expect("unfinished walker has a candidate");
            let won = !self.claimed[cand];
            if won {
                self.claimed[cand] = true;
            }
            if let Some(part) = self.walkers[w].record(won) {
                let r = block_bounds(self.n, self.r_parts, part);
                if !r.is_empty() {
                    self.set.push(w, r.start, r.end);
                }
            }
            return Action::Stall(self.cost.claim);
        }
        // Heuristic exhausted: ordinary work stealing.
        let stolen =
            if self.socket_first { self.set.steal_socket_first(w) } else { self.set.steal(w) };
        match stolen {
            Some(a) => a,
            None => Action::Finished,
        }
    }

    fn steal_counts(&self) -> (u64, u64) {
        (self.set.local_steals, self.set.remote_steals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a policy round-robin (all workers at equal pace) and collect
    /// which iterations ran where; checks exactly-once coverage.
    fn drive(kind: PolicyKind, n: usize, p: usize) -> Vec<Option<usize>> {
        drive_topo(kind, n, p, &TopologyMap::flat(p))
    }

    #[allow(clippy::needless_range_loop)]
    fn drive_topo(kind: PolicyKind, n: usize, p: usize, topo: &TopologyMap) -> Vec<Option<usize>> {
        let mut pol = make_policy(kind, n, p, 16, CostModel::xeon(), 7, topo);
        let mut owner = vec![None; n];
        let mut finished = vec![false; p];
        let mut guard = 0;
        while finished.iter().any(|f| !f) {
            guard += 1;
            assert!(guard < 1_000_000, "{} did not terminate", kind.name());
            for w in 0..p {
                if finished[w] {
                    continue;
                }
                match pol.next(w) {
                    Action::Run { lo, hi, .. } => {
                        for i in lo..hi {
                            assert!(owner[i].is_none(), "{}: iter {i} ran twice", kind.name());
                            owner[i] = Some(w);
                        }
                    }
                    Action::Stall(_) => {}
                    Action::Finished => finished[w] = true,
                }
            }
        }
        owner
    }

    #[test]
    fn all_policies_cover_exactly_once() {
        for kind in PolicyKind::roster() {
            for (n, p) in [(100, 4), (1000, 8), (7, 3), (64, 32), (1, 1)] {
                let owner = drive(kind, n, p);
                assert!(
                    owner.iter().all(|o| o.is_some()),
                    "{} (n={n}, p={p}): missed iterations",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn sequential_runs_all_on_worker_zero() {
        let owner = drive(PolicyKind::Sequential, 50, 4);
        assert!(owner.iter().all(|&o| o == Some(0)));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn static_matches_block_bounds() {
        let n = 103;
        let p = 4;
        let owner = drive(PolicyKind::Static, n, p);
        for i in 0..n {
            assert_eq!(owner[i], Some(parloop_core::block_of(n, p, i)));
        }
    }

    #[test]
    fn hybrid_lone_worker_first_claims_its_own_partition() {
        // With one worker active (others never scheduled), the claim order
        // must start at partition w.
        let mut pol =
            make_policy(PolicyKind::Hybrid, 64, 4, 4, CostModel::xeon(), 7, &TopologyMap::flat(4));
        // Worker 2 acts alone.
        let mut first_range = None;
        for _ in 0..100 {
            match pol.next(2) {
                Action::Run { lo, hi, .. } => {
                    first_range = Some((lo, hi));
                    break;
                }
                Action::Stall(_) => {}
                Action::Finished => break,
            }
        }
        let r = parloop_core::block_bounds(64, 4, 2);
        // Worker 2's first executed chunk comes from its own partition.
        let (lo, hi) = first_range.expect("worker 2 got work");
        assert!(lo >= r.start && hi <= r.end, "chunk {lo}..{hi} outside partition {r:?}");
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn hybrid_round_robin_gives_every_worker_its_partition() {
        // With all workers advancing in lockstep, worker w should execute
        // (most of) partition w — the affinity property.
        let n = 4096;
        let p = 8;
        let owner = drive(PolicyKind::Hybrid, n, p);
        let mut own_count = 0;
        for i in 0..n {
            if owner[i] == Some(parloop_core::block_of(n, p, i)) {
                own_count += 1;
            }
        }
        assert!(
            own_count as f64 / n as f64 > 0.9,
            "only {own_count}/{n} iterations on their earmarked worker"
        );
    }

    #[test]
    fn stealing_distributes_to_multiple_workers() {
        let owner = drive(PolicyKind::Stealing, 4096, 4);
        let distinct: std::collections::HashSet<_> = owner.iter().flatten().collect();
        assert!(distinct.len() > 1, "stealing never moved work");
    }

    #[test]
    fn guided_chunks_decrease() {
        let mut pol = make_policy(
            PolicyKind::Guided,
            1000,
            4,
            1,
            CostModel::xeon(),
            7,
            &TopologyMap::flat(4),
        );
        let mut sizes = Vec::new();
        loop {
            match pol.next(0) {
                Action::Run { lo, hi, .. } => sizes.push(hi - lo),
                Action::Finished => break,
                Action::Stall(_) => {}
            }
        }
        assert!(sizes.first().unwrap() > sizes.last().unwrap());
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        for w in sizes.windows(2) {
            assert!(w[1] <= w[0], "guided chunks must not grow: {sizes:?}");
        }
    }

    #[test]
    fn work_sharing_uses_fixed_chunks() {
        let mut pol = make_policy(
            PolicyKind::WorkSharing,
            100,
            4,
            16,
            CostModel::xeon(),
            7,
            &TopologyMap::flat(4),
        );
        let mut sizes = Vec::new();
        loop {
            match pol.next(1) {
                Action::Run { lo, hi, .. } => sizes.push(hi - lo),
                Action::Finished => break,
                Action::Stall(_) => {}
            }
        }
        assert_eq!(sizes.iter().sum::<usize>(), 100);
        assert!(sizes[..sizes.len() - 1].iter().all(|&s| s == 16));
    }

    #[test]
    fn hybrid_oversub_covers_exactly_once() {
        for factor in [2u8, 4, 8] {
            let owner = drive_kind(PolicyKind::HybridOversub(factor), 500, 4);
            assert!(owner.iter().all(|o| o.is_some()), "factor {factor}");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn static_cyclic_deals_round_robin() {
        let n = 64;
        let p = 4;
        let chunk = 4;
        let owner = drive_kind(PolicyKind::StaticCyclic(chunk as u16), n, p);
        for i in 0..n {
            assert_eq!(owner[i], Some((i / chunk) % p), "iteration {i}");
        }
    }

    fn drive_kind(kind: PolicyKind, n: usize, p: usize) -> Vec<Option<usize>> {
        drive(kind, n, p)
    }

    #[test]
    fn hybrid_socket_first_covers_exactly_once() {
        // Earmarked anchors relabel the claim walks; coverage must hold on
        // balanced and ragged shapes alike.
        let topo = TopologyMap::from_sockets(vec![0, 0, 1, 1, 2, 2, 3, 3]);
        for (n, p) in [(100, 4), (1000, 8), (7, 3), (64, 8), (1, 1)] {
            let owner = drive_topo(PolicyKind::HybridSocketFirst, n, p, &topo);
            assert!(owner.iter().all(|o| o.is_some()), "(n={n}, p={p}): missed iterations");
        }
    }

    #[test]
    fn socket_first_sweep_prefers_local_victims() {
        let topo = TopologyMap::from_sockets(vec![0, 0, 1, 1]);
        let mut set = DequeSet::new(4, 8, CostModel::xeon(), 7, &topo, true);
        // Work on worker 1 (thief's socket) and worker 3 (remote).
        set.push(1, 0, 8);
        set.push(3, 8, 16);
        // Worker 0's sweep must take the same-socket victim first.
        match set.steal_socket_first(0).expect("work is queued") {
            Action::Run { lo, .. } => assert_eq!(lo, 0, "stole from the remote victim first"),
            a => panic!("expected a successful steal, got {a:?}"),
        }
        assert_eq!((set.local_steals, set.remote_steals), (1, 0));
        // Local phase exhausted: the sweep falls through to the remote one.
        match set.steal_socket_first(0).expect("work is queued") {
            Action::Run { lo, .. } => assert_eq!(lo, 8),
            a => panic!("expected a successful steal, got {a:?}"),
        }
        assert_eq!((set.local_steals, set.remote_steals), (1, 1));
    }

    #[test]
    fn socket_first_lone_worker_first_claims_its_earmark() {
        // Scatter pinning [0,1,0,1]: worker 2 is the second worker of
        // socket 0, whose NUMA block covers partitions 0..2 — so its walk
        // anchors at partition 1, not at partition 2.
        let topo = TopologyMap::from_sockets(vec![0, 1, 0, 1]);
        let mut pol =
            make_policy(PolicyKind::HybridSocketFirst, 64, 4, 4, CostModel::xeon(), 7, &topo);
        let mut first_range = None;
        for _ in 0..100 {
            match pol.next(2) {
                Action::Run { lo, hi, .. } => {
                    first_range = Some((lo, hi));
                    break;
                }
                Action::Stall(_) => {}
                Action::Finished => break,
            }
        }
        let r = parloop_core::block_bounds(64, 4, 1);
        let (lo, hi) = first_range.expect("worker 2 got work");
        assert!(lo >= r.start && hi <= r.end, "chunk {lo}..{hi} outside earmarked {r:?}");
    }

    #[test]
    fn uniform_stealing_still_classifies_remote_steals() {
        // Victim ORDER is the policy knob; local/remote CLASSIFICATION
        // follows the topology even under uniform stealing.
        let topo = TopologyMap::from_sockets(vec![0, 1]);
        let mut pol = make_policy(PolicyKind::Stealing, 256, 2, 8, CostModel::xeon(), 7, &topo);
        let mut finished = [false; 2];
        let mut guard = 0;
        while finished.iter().any(|f| !f) {
            guard += 1;
            assert!(guard < 100_000);
            for (w, fin) in finished.iter_mut().enumerate() {
                if !*fin && pol.next(w) == Action::Finished {
                    *fin = true;
                }
            }
        }
        let (local, remote) = pol.steal_counts();
        assert_eq!(local, 0, "two workers on two sockets cannot steal locally");
        assert!(remote > 0, "worker 1 must have stolen from the initiator");
    }

    #[test]
    fn empty_loop_finishes_immediately() {
        for kind in PolicyKind::roster() {
            let mut pol = make_policy(kind, 0, 4, 8, CostModel::xeon(), 7, &TopologyMap::flat(4));
            for w in 0..4 {
                let mut steps = 0;
                loop {
                    match pol.next(w) {
                        Action::Finished => break,
                        Action::Stall(_) => {
                            steps += 1;
                            assert!(steps < 100, "{} stalls forever on empty loop", kind.name());
                        }
                        Action::Run { .. } => panic!("{}: work in empty loop", kind.name()),
                    }
                }
            }
        }
    }
}
