//! Models of the paper's two microbenchmarks (Section V).
//!
//! Each microbenchmark is "an outer sequential loop with an inner parallel
//! loop, where each parallel loop iteration operates on an array in strides
//! of 13 modulo the size of the array … The arrays accessed by different
//! parallel iterations do not overlap in memory." `balanced` gives every
//! iteration the same block; `unbalanced` ramps block sizes linearly (the
//! largest ≈ 7× the smallest), so both the data *and* the work are skewed.
//!
//! The three working-set sizes match Figure 2's header: comfortably under
//! one socket's 16 MB L3, right at it, and far above it.

use std::sync::Arc;

use crate::workload::{
    weighted_offsets, AccessPattern, AddressSpace, AppModel, CostProfile, LoopModel,
};

/// Cycles of CPU work per 8-byte element per pass (address arithmetic +
/// the modulo-stride computation of the paper's kernel).
const CYCLES_PER_ELEM: f64 = 1.25;

/// Parameters of a microbenchmark instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroParams {
    /// Total bytes of the shared array (split among iterations).
    pub working_set: usize,
    /// Parallel iterations per inner loop.
    pub iterations: usize,
    /// Passes each iteration makes over its block.
    pub passes: u32,
    /// Outer sequential repetitions.
    pub outer: usize,
    /// Equal blocks (`true`) or a 7:1 linear ramp (`false`).
    pub balanced: bool,
}

impl MicroParams {
    /// The paper's three working-set sizes, with their Figure 2 labels.
    pub const WORKING_SETS: [(&'static str, usize); 3] = [
        ("11.90MB", (119 << 20) / 10),
        ("15.87MB", 16_644_997), // ~15.87 MiB
        ("79.35MB", (7935 << 20) / 100),
    ];

    /// Default shape: 512 iterations, 2 passes, 8 outer phases.
    pub fn new(working_set: usize, balanced: bool) -> Self {
        MicroParams { working_set, iterations: 512, passes: 2, outer: 8, balanced }
    }

    /// A scaled-down instance for fast tests.
    pub fn small_for_tests(balanced: bool) -> Self {
        MicroParams { working_set: 1 << 20, iterations: 64, passes: 1, outer: 4, balanced }
    }

    /// The unbalance ratio (largest block / smallest block).
    ///
    /// Unbalance ratio (largest block / smallest block).
    ///
    /// The paper only says iterations "access variable amounts" of data;
    /// we use an *exponential* ramp to 64x. The profile shape matters for
    /// reproducing "the non-static schemes clearly win out": a linear ramp
    /// caps any static worker's aggregate share below 2x the mean (and a
    /// polynomial one below degree+1), which static partitioning tolerates;
    /// the exponential ramp concentrates ~4x the mean share on the last
    /// worker, which it cannot.
    pub fn ramp(&self) -> f64 {
        if self.balanced {
            1.0
        } else {
            64.0
        }
    }

    /// Per-iteration block-size weights (exponential ramp when unbalanced).
    pub fn weights(&self) -> Vec<f64> {
        let n = self.iterations;
        let ramp = self.ramp();
        (0..n)
            .map(|i| {
                if n == 1 {
                    1.0
                } else {
                    let t = i as f64 / (n - 1) as f64;
                    ramp.powf(t)
                }
            })
            .collect()
    }
}

/// Build the microbenchmark application model.
pub fn micro_app(params: MicroParams) -> AppModel {
    let mut space = AddressSpace::new();
    let array = space.alloc(params.working_set);
    let offsets = weighted_offsets(params.working_set, &params.weights());

    // CPU cost tracks the data volume of each iteration exactly.
    let cpu: Vec<f64> = offsets
        .iter()
        .map(|&(_, bytes)| (bytes as f64 / 8.0) * CYCLES_PER_ELEM * params.passes as f64)
        .collect();

    AppModel {
        name: format!(
            "micro-{}-{}MB",
            if params.balanced { "balanced" } else { "unbalanced" },
            params.working_set >> 20
        ),
        loops: vec![LoopModel {
            name: "micro",
            n: params.iterations,
            cpu: CostProfile::PerIter(Arc::new(cpu)),
            patterns: vec![AccessPattern::Block {
                array,
                offsets,
                passes: params.passes,
                write: true,
            }],
        }],
        outer: params.outer,
        seq_between: 2_000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{sequential_time, simulate, SimConfig};
    use crate::policy::PolicyKind;

    #[test]
    fn working_sets_bracket_the_l3() {
        let l3 = 16 << 20;
        let [(_, a), (_, b), (_, c)] = MicroParams::WORKING_SETS;
        assert!(a < l3, "first working set must fit in L3");
        assert!(b > (15 << 20) && b < (17 << 20), "second is at about L3 size");
        assert!(c > 4 * l3, "third far exceeds L3");
    }

    #[test]
    fn balanced_blocks_equal_unbalanced_ramp() {
        let b = micro_app(MicroParams::small_for_tests(true));
        let u = micro_app(MicroParams::small_for_tests(false));
        // Same total footprint.
        assert_eq!(b.loops[0].total_accesses(), u.loops[0].total_accesses());
        // Unbalanced per-iteration cpu spread is wide, balanced is flat.
        let spread = |app: &AppModel| {
            let n = app.loops[0].n;
            let c0 = app.loops[0].cpu.cycles(0, n);
            let cl = app.loops[0].cpu.cycles(n - 1, n);
            cl / c0
        };
        assert!((spread(&b) - 1.0).abs() < 1e-9);
        assert!(spread(&u) > 4.0);
    }

    #[test]
    fn one_core_work_efficiency_near_one() {
        // The paper adjusts chunk sizes so Ts/T1 ≈ 1; our model must agree.
        let app = micro_app(MicroParams::small_for_tests(true));
        let cfg = SimConfig::xeon();
        let ts = sequential_time(&app, &cfg);
        for kind in PolicyKind::roster() {
            let t1 = simulate(&app, kind, 1, &cfg).total_cycles;
            let eff = ts / t1;
            assert!(
                eff > 0.80 && eff <= 1.001,
                "{}: work efficiency {eff:.3} out of range",
                kind.name()
            );
        }
    }

    #[test]
    fn balanced_static_and_hybrid_scale_well() {
        let app = micro_app(MicroParams::small_for_tests(true));
        let cfg = SimConfig::xeon();
        for kind in [PolicyKind::Static, PolicyKind::Hybrid] {
            let t1 = simulate(&app, kind, 1, &cfg).total_cycles;
            let t8 = simulate(&app, kind, 8, &cfg).total_cycles;
            let s = t1 / t8;
            assert!(s > 4.0, "{}: speedup {s:.2} on 8 cores too low", kind.name());
        }
    }

    #[test]
    fn unbalanced_dynamic_beats_static() {
        let app = micro_app(MicroParams::small_for_tests(false));
        let cfg = SimConfig::xeon();
        let st = simulate(&app, PolicyKind::Static, 8, &cfg).total_cycles;
        for kind in [PolicyKind::Hybrid, PolicyKind::Stealing, PolicyKind::Guided] {
            let t = simulate(&app, kind, 8, &cfg).total_cycles;
            assert!(
                t < st,
                "{} ({t:.0}) should beat omp_static ({st:.0}) on unbalanced",
                kind.name()
            );
        }
    }
}
