//! Scheduling-overhead cost model, in CPU cycles.
//!
//! These constants play the role of the runtime-system costs the paper's
//! real machine exhibits: deque pushes, steal attempts, shared-cursor
//! atomics, claim-table `fetch_or`s, team fork/barrier. They are *model
//! inputs*, calibrated to the orders of magnitude reported for such
//! operations on Sandy-Bridge-class Xeons (an uncontended atomic RMW on a
//! shared line costs tens of cycles; a cross-socket one, hundreds) and
//! sanity-checked by the requirement that every scheme's one-core work
//! efficiency land near 1.0 — as in the first column of the paper's
//! Figure 1 — for the paper's chunk sizes.

/// Cycle costs for scheduler operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Pushing/popping a spawned frame on the own deque (work-first Cilk
    /// spawn path).
    pub spawn: f64,
    /// A failed steal attempt (probe a remote deque).
    pub steal_attempt: f64,
    /// A successful steal (CAS on the victim's top + cache transfer).
    pub steal_success: f64,
    /// One `fetch_add`/CAS grab on a shared loop cursor, uncontended.
    pub shared_grab: f64,
    /// Additional cost per *other* active worker hammering the same
    /// cursor (line ping-pong).
    pub grab_contention: f64,
    /// One `fetch_or` claim on the hybrid partition table.
    pub claim: f64,
    /// Entering a team parallel region (per loop).
    pub team_fork: f64,
    /// Leaving a team region: barrier cost per participating worker.
    pub barrier_per_worker: f64,
    /// Per discovery "hop": how long until the k-th non-initiating worker
    /// finds a stealing-scheme loop (multiplied by `lg(k+1)`).
    pub discovery_hop: f64,
}

impl CostModel {
    /// Default calibration for the modeled Xeon E5-4620.
    pub fn xeon() -> Self {
        CostModel {
            spawn: 12.0,
            steal_attempt: 180.0,
            steal_success: 450.0,
            shared_grab: 90.0,
            grab_contention: 14.0,
            claim: 120.0,
            team_fork: 600.0,
            barrier_per_worker: 80.0,
            discovery_hop: 500.0,
        }
    }

    /// A zero-overhead model (used to compute the sequential baseline
    /// `T_s`, the paper's "running time of the sequential code without any
    /// parallel constructs").
    pub fn free() -> Self {
        CostModel {
            spawn: 0.0,
            steal_attempt: 0.0,
            steal_success: 0.0,
            shared_grab: 0.0,
            grab_contention: 0.0,
            claim: 0.0,
            team_fork: 0.0,
            barrier_per_worker: 0.0,
            discovery_hop: 0.0,
        }
    }

    /// Cost of one shared-cursor grab with `active` workers in the loop.
    #[inline]
    pub fn grab(&self, active: usize) -> f64 {
        self.shared_grab + self.grab_contention * active.saturating_sub(1) as f64
    }

    /// Arrival delay of the `rank`-th worker (0 = initiator) into a
    /// steal-discovered loop: steals propagate like a binary tree, so the
    /// delay grows with `lg(rank+1)`.
    pub fn arrival(&self, rank: usize) -> f64 {
        if rank == 0 {
            0.0
        } else {
            self.discovery_hop * ((rank + 1) as f64).log2().ceil()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_model_is_all_zero() {
        let f = CostModel::free();
        assert_eq!(f.grab(32), 0.0);
        assert_eq!(f.arrival(31), 0.0);
        assert_eq!(f.spawn, 0.0);
    }

    #[test]
    fn grab_scales_with_contention() {
        let c = CostModel::xeon();
        assert!(c.grab(1) < c.grab(2));
        assert!((c.grab(1) - c.shared_grab).abs() < 1e-9);
        assert!((c.grab(5) - (c.shared_grab + 4.0 * c.grab_contention)).abs() < 1e-9);
    }

    #[test]
    fn arrival_monotone_in_rank() {
        let c = CostModel::xeon();
        assert_eq!(c.arrival(0), 0.0);
        assert!(c.arrival(1) > 0.0);
        assert!(c.arrival(7) <= c.arrival(15));
        assert!(c.arrival(1) <= c.arrival(31));
    }
}
