//! Tenant handles: QoS class, fair-share weight, deadline, admission.

use std::ops::Range;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parloop_chaos::{chaos_spin, FaultAction, Site};
use parloop_core::{try_par_for_chunks, Schedule};
use parloop_runtime::{CancelToken, QosClass, ThreadPool, TraceEvent, WorkerToken};

use crate::global::global_pool;
use crate::hist::LatencyHistogram;

/// Default admission window per unit of [`TenantBuilder::weight`]: a
/// tenant may have `weight * DEFAULT_DEPTH_PER_WEIGHT` loops in flight
/// before [`TenantError::Overloaded`] rejections start. Weight-scaling
/// the window is the fairness mechanism — equal-weight tenants get equal
/// standing demand on the lanes, and the DRR drain does the rest.
pub const DEFAULT_DEPTH_PER_WEIGHT: usize = 4;

/// Process-wide tenant id allocator (ids tag trace events).
static NEXT_TENANT_ID: AtomicU32 = AtomicU32::new(0);

/// Errors a tenant loop can return without running (or completing) the
/// loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantError {
    /// Admission control rejected the loop: the tenant already had its
    /// full depth-limit of loops in flight (or the chaos layer forced a
    /// rejection at [`Site::Admission`]). Nothing was queued; no
    /// iteration ran. Back off and retry.
    Overloaded,
    /// The tenant's deadline passed before the loop completed. Chunks
    /// that started before the deadline was observed ran exactly once;
    /// no new chunks were claimed after it.
    DeadlineExceeded,
}

impl std::fmt::Display for TenantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantError::Overloaded => f.write_str("tenant over its admission depth limit"),
            TenantError::DeadlineExceeded => f.write_str("tenant deadline exceeded"),
        }
    }
}

impl std::error::Error for TenantError {}

/// Point-in-time snapshot of one tenant's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Loops admitted and installed on the pool.
    pub installed: u64,
    /// Loops rejected by admission control ([`TenantError::Overloaded`]).
    pub rejected: u64,
    /// Loops cancelled by the tenant deadline
    /// ([`TenantError::DeadlineExceeded`]).
    pub cancelled_by_deadline: u64,
    /// Loops currently admitted and not yet finished.
    pub in_flight: usize,
}

/// The shared state behind a [`Tenant`] and its clones.
struct Shared {
    id: u32,
    name: String,
    class: QosClass,
    weight: u32,
    deadline: Option<Duration>,
    depth_limit: usize,
    in_flight: AtomicUsize,
    installed: AtomicU64,
    rejected: AtomicU64,
    cancelled_by_deadline: AtomicU64,
    install_latency: LatencyHistogram,
}

/// Decrement-on-drop admission slot, so a panicking loop body (or an
/// early return) can never leak in-flight accounting and wedge the
/// tenant at its depth limit. Owns its `Arc` so detached jobs can carry
/// the slot onto a worker and release it when the job finishes.
struct AdmitGuard(Arc<Shared>);

impl Drop for AdmitGuard {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Configures a [`Tenant`]; created via [`Tenant::builder`].
pub struct TenantBuilder {
    name: String,
    class: QosClass,
    weight: u32,
    deadline: Option<Duration>,
    max_in_flight: Option<usize>,
}

impl TenantBuilder {
    /// QoS class for every loop this tenant submits. Default:
    /// [`QosClass::Batch`] — latency standing is something a tenant opts
    /// into, not the bulk default.
    pub fn class(mut self, class: QosClass) -> Self {
        self.class = class;
        self
    }

    /// Fair-share weight (≥ 1). Scales the admission window:
    /// `weight * DEFAULT_DEPTH_PER_WEIGHT` loops in flight unless
    /// [`max_in_flight`](Self::max_in_flight) overrides it.
    pub fn weight(mut self, weight: u32) -> Self {
        assert!(weight >= 1, "tenant weight must be at least 1");
        self.weight = weight;
        self
    }

    /// Per-loop deadline: each loop gets a fresh
    /// [`CancelToken::cancel_after`]`(deadline)` and returns
    /// [`TenantError::DeadlineExceeded`] if it fires first.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Explicit admission window, overriding the weight-scaled default.
    pub fn max_in_flight(mut self, depth: usize) -> Self {
        assert!(depth >= 1, "a tenant needs an admission window of at least 1");
        self.max_in_flight = Some(depth);
        self
    }

    /// Build the tenant on the process-global pool (creating the pool
    /// with defaults if this is the first use — see
    /// [`global_pool`](crate::global_pool)).
    pub fn build(self) -> Tenant {
        let pool = global_pool();
        self.build_on(pool)
    }

    /// Build the tenant on an explicit pool (tests, benches, and
    /// embedders that manage their own fleet).
    pub fn build_on(self, pool: Arc<ThreadPool>) -> Tenant {
        let depth_limit =
            self.max_in_flight.unwrap_or(self.weight as usize * DEFAULT_DEPTH_PER_WEIGHT);
        Tenant {
            pool,
            shared: Arc::new(Shared {
                id: NEXT_TENANT_ID.fetch_add(1, Ordering::Relaxed),
                name: self.name,
                class: self.class,
                weight: self.weight,
                deadline: self.deadline,
                depth_limit,
                in_flight: AtomicUsize::new(0),
                installed: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                cancelled_by_deadline: AtomicU64::new(0),
                install_latency: LatencyHistogram::new(),
            }),
        }
    }
}

/// A caller's handle onto the shared fleet. Cloning is cheap and clones
/// share class, weight, admission window, and stats — hand clones to the
/// tenant's submitter threads.
#[derive(Clone)]
pub struct Tenant {
    pool: Arc<ThreadPool>,
    shared: Arc<Shared>,
}

impl Tenant {
    /// Start configuring a tenant named `name` (names are for humans and
    /// stats; ids tag trace events).
    pub fn builder(name: impl Into<String>) -> TenantBuilder {
        TenantBuilder {
            name: name.into(),
            class: QosClass::Batch,
            weight: 1,
            deadline: None,
            max_in_flight: None,
        }
    }

    /// This tenant's process-unique id (tags `tenant_installed` /
    /// `tenant_deadline` trace events).
    pub fn id(&self) -> u32 {
        self.shared.id
    }

    /// The name given at build time.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// The QoS class every loop of this tenant is injected with.
    pub fn class(&self) -> QosClass {
        self.shared.class
    }

    /// The fair-share weight.
    pub fn weight(&self) -> u32 {
        self.shared.weight
    }

    /// The admission window (maximum in-flight loops).
    pub fn depth_limit(&self) -> usize {
        self.shared.depth_limit
    }

    /// The pool this tenant submits to.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }

    /// Snapshot of this tenant's counters.
    pub fn stats(&self) -> TenantStats {
        TenantStats {
            installed: self.shared.installed.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            cancelled_by_deadline: self.shared.cancelled_by_deadline.load(Ordering::Relaxed),
            in_flight: self.shared.in_flight.load(Ordering::Relaxed),
        }
    }

    /// p50 install latency (admission to first instruction on a worker),
    /// as the upper bound of its log2 bucket. `None` before any install.
    pub fn p50_install_latency(&self) -> Option<Duration> {
        self.shared.install_latency.p50()
    }

    /// p99 install latency; see
    /// [`p50_install_latency`](Self::p50_install_latency).
    pub fn p99_install_latency(&self) -> Option<Duration> {
        self.shared.install_latency.p99()
    }

    /// Claim an admission slot, or reject. The chaos site runs first so a
    /// forced rejection exercises the exact path real overload takes.
    fn admit(&self) -> Result<AdmitGuard, TenantError> {
        if self.pool.chaos_enabled() {
            // `Panic` is already demoted to `Fail` by the runtime: faults
            // must never unwind into user submitter threads.
            match self.pool.chaos_decide_external(Site::Admission) {
                FaultAction::Fail | FaultAction::Panic => {
                    self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(TenantError::Overloaded);
                }
                FaultAction::Delay(spins) => chaos_spin(spins),
                FaultAction::None => {}
            }
        }
        let mut cur = self.shared.in_flight.load(Ordering::Relaxed);
        loop {
            if cur >= self.shared.depth_limit {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(TenantError::Overloaded);
            }
            match self.shared.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(AdmitGuard(Arc::clone(&self.shared))),
                Err(seen) => cur = seen,
            }
        }
    }

    /// A fresh cancellation token for one loop: a deadline token if the
    /// tenant has a deadline (one code path with every other
    /// `cancel_after` user), otherwise a plain never-firing token.
    fn loop_token(&self) -> CancelToken {
        match self.shared.deadline {
            Some(d) => CancelToken::cancel_after(d),
            None => CancelToken::new(),
        }
    }

    /// Run a chunked parallel loop under this tenant's class, weight
    /// window, and deadline. See
    /// [`try_par_for_chunks`](parloop_core::try_par_for_chunks) for the
    /// chunk semantics; on `Err` nothing leaks — admission slots are
    /// released and every chunk that started ran exactly once.
    pub fn par_for_chunks<F>(
        &self,
        range: Range<usize>,
        sched: Schedule,
        body: F,
    ) -> Result<(), TenantError>
    where
        F: Fn(Range<usize>) + Sync,
    {
        let _slot = self.admit()?;
        let cancel = self.loop_token();
        let shared = &self.shared;
        let pool = &self.pool;
        let submitted = Instant::now();
        let result = pool.install_class(shared.class, || {
            // First instruction on the worker: the queueing delay QoS is
            // supposed to bound. The nested loop entry below installs
            // inline (same pool), so this is the only injected hop.
            shared.install_latency.record(submitted.elapsed());
            shared.installed.fetch_add(1, Ordering::Relaxed);
            if let Some(token) = WorkerToken::current() {
                token.trace(TraceEvent::TenantInstalled {
                    tenant: shared.id,
                    class: shared.class.as_u8(),
                });
            }
            let r = try_par_for_chunks(pool, range, sched, &cancel, &body);
            if r.is_err() {
                // Still on the worker: the deadline event must be traced
                // here (trace sinks index per-worker rings; the submitter
                // thread has none).
                if let Some(token) = WorkerToken::current() {
                    token.trace(TraceEvent::TenantDeadline { tenant: shared.id });
                }
            }
            r
        });
        match result {
            Ok(()) => Ok(()),
            Err(_cancelled) => {
                shared.cancelled_by_deadline.fetch_add(1, Ordering::Relaxed);
                Err(TenantError::DeadlineExceeded)
            }
        }
    }

    /// Per-index convenience over [`par_for_chunks`](Self::par_for_chunks).
    pub fn par_for<F>(
        &self,
        range: Range<usize>,
        sched: Schedule,
        body: F,
    ) -> Result<(), TenantError>
    where
        F: Fn(usize) + Sync,
    {
        self.par_for_chunks(range, sched, |chunk| {
            for i in chunk {
                body(i);
            }
        })
    }

    /// Fire-and-forget: run `f` on the pool under this tenant's class,
    /// holding one admission slot until the job finishes (the slot rides
    /// inside the job, so a rejected spawn queues nothing and a finished
    /// job frees its slot even if `f` panics).
    pub fn spawn_detached<F>(&self, f: F) -> Result<(), TenantError>
    where
        F: FnOnce() + Send + 'static,
    {
        let slot = self.admit()?;
        let shared = Arc::clone(&self.shared);
        let submitted = Instant::now();
        self.pool.spawn_detached_class(shared.class, move || {
            let _slot = slot;
            shared.install_latency.record(submitted.elapsed());
            shared.installed.fetch_add(1, Ordering::Relaxed);
            if let Some(token) = WorkerToken::current() {
                token.trace(TraceEvent::TenantInstalled {
                    tenant: shared.id,
                    class: shared.class.as_u8(),
                });
            }
            f()
        });
        Ok(())
    }

    /// Run an arbitrary closure on the pool under this tenant's class and
    /// admission window (no deadline — the closure has no cooperative
    /// cancellation points).
    pub fn install<R, F>(&self, op: F) -> Result<R, TenantError>
    where
        R: Send,
        F: FnOnce() -> R + Send,
    {
        let _slot = self.admit()?;
        let shared = &self.shared;
        let submitted = Instant::now();
        Ok(self.pool.install_class(shared.class, || {
            shared.install_latency.record(submitted.elapsed());
            shared.installed.fetch_add(1, Ordering::Relaxed);
            if let Some(token) = WorkerToken::current() {
                token.trace(TraceEvent::TenantInstalled {
                    tenant: shared.id,
                    class: shared.class.as_u8(),
                });
            }
            op()
        }))
    }
}

impl std::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant")
            .field("id", &self.shared.id)
            .field("name", &self.shared.name)
            .field("class", &self.shared.class)
            .field("weight", &self.shared.weight)
            .field("depth_limit", &self.shared.depth_limit)
            .finish_non_exhaustive()
    }
}
