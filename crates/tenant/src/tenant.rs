//! Tenant handles: QoS class, fair-share weight, deadline, admission.

use std::ops::Range;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parloop_chaos::{chaos_spin, FaultAction, Site};
use parloop_core::{try_par_for_chunks, Schedule};
use parloop_runtime::{CancelToken, QosClass, ThreadPool, TraceEvent, WorkerToken};

use crate::global::global_pool;
use crate::hist::LatencyHistogram;

/// Default admission window per unit of [`TenantBuilder::weight`]: a
/// tenant may have `weight * DEFAULT_DEPTH_PER_WEIGHT` loops in flight
/// before [`TenantError::Overloaded`] rejections start. Weight-scaling
/// the window is the fairness mechanism — equal-weight tenants get equal
/// standing demand on the lanes, and the DRR drain does the rest.
pub const DEFAULT_DEPTH_PER_WEIGHT: usize = 4;

/// Process-wide tenant id allocator (ids tag trace events).
static NEXT_TENANT_ID: AtomicU32 = AtomicU32::new(0);

/// Errors a tenant loop can return without running (or completing) the
/// loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantError {
    /// Admission control rejected the loop: the tenant already had its
    /// full depth-limit of loops in flight (or the chaos layer forced a
    /// rejection at [`Site::Admission`]). Nothing was queued; no
    /// iteration ran. Back off and retry.
    Overloaded,
    /// The tenant's deadline passed before the loop completed. Chunks
    /// that started before the deadline was observed ran exactly once;
    /// no new chunks were claimed after it.
    DeadlineExceeded,
    /// The tenant's circuit breaker is open: enough consecutive
    /// rejections tripped it, and submissions fail fast (no admission
    /// attempt, no retry loop) until the cooldown elapses and a
    /// half-open probe succeeds. Only returned by tenants configured
    /// with [`TenantBuilder::circuit_breaker`].
    BreakerOpen,
}

impl std::fmt::Display for TenantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantError::Overloaded => f.write_str("tenant over its admission depth limit"),
            TenantError::DeadlineExceeded => f.write_str("tenant deadline exceeded"),
            TenantError::BreakerOpen => f.write_str("tenant circuit breaker open"),
        }
    }
}

impl std::error::Error for TenantError {}

/// Retry-on-[`Overloaded`](TenantError::Overloaded) policy: jittered
/// exponential backoff, capped both per sleep and in total attempts.
/// Installed via [`TenantBuilder::retry_policy`]; without one a tenant
/// never retries (the pre-existing behavior).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retry budget: attempts after the initial one. `0` disables.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Cap on any single backoff sleep.
    pub max_backoff: Duration,
}

impl RetryPolicy {
    /// A policy with `max_retries` attempts, 50 µs base, 5 ms cap.
    pub fn new(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(5),
        }
    }

    /// Override the base backoff (doubles per attempt).
    pub fn base_backoff(mut self, base: Duration) -> Self {
        self.base_backoff = base;
        self
    }

    /// Override the per-sleep cap.
    pub fn max_backoff(mut self, cap: Duration) -> Self {
        self.max_backoff = cap;
        self
    }

    /// The jittered sleep before retry number `attempt` (1-based): the
    /// exponential `base * 2^(attempt-1)` capped at `max_backoff`, then
    /// scaled into `[1/2, 1)` of itself by a hash of `(salt, attempt)` so
    /// colliding submitters decorrelate deterministically.
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let raw = self.base_backoff.saturating_mul(1u32 << exp).min(self.max_backoff);
        let h = splitmix64(salt ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Jitter factor in [512, 1024) / 1024 — i.e. [0.5, 1.0).
        let num = 512 + (h % 512) as u32;
        raw.mul_f64(num as f64 / 1024.0)
    }
}

/// SplitMix64 — the same mixer the chaos layer uses for deterministic
/// plans, reproduced here (it is not exported) for backoff jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-thread jitter salt, so same-tenant submitters on different
/// threads back off on decorrelated schedules.
fn submitter_salt() -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    h.finish()
}

/// Circuit-breaker configuration: `threshold` consecutive rejections
/// open the breaker; after `cooldown` one half-open probe is let
/// through, and its outcome closes or re-opens the breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BreakerConfig {
    threshold: u32,
    cooldown: Duration,
}

/// Breaker states (stored in `Shared::breaker_state`).
const BREAKER_CLOSED: u8 = 0;
const BREAKER_OPEN: u8 = 1;
const BREAKER_HALF_OPEN: u8 = 2;

/// Point-in-time snapshot of one tenant's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Loops admitted and installed on the pool.
    pub installed: u64,
    /// Loops rejected by admission control ([`TenantError::Overloaded`]).
    pub rejected: u64,
    /// Loops cancelled by the tenant deadline
    /// ([`TenantError::DeadlineExceeded`]).
    pub cancelled_by_deadline: u64,
    /// Backoff-retries taken after `Overloaded` rejections (counts every
    /// retry attempt, successful or not; zero without a
    /// [`RetryPolicy`]).
    pub retries: u64,
    /// Times the circuit breaker opened (closed→open and a failed
    /// half-open probe re-opening both count).
    pub breaker_trips: u64,
    /// Loops currently admitted and not yet finished.
    pub in_flight: usize,
}

/// The shared state behind a [`Tenant`] and its clones.
struct Shared {
    id: u32,
    name: String,
    class: QosClass,
    weight: u32,
    deadline: Option<Duration>,
    depth_limit: usize,
    in_flight: AtomicUsize,
    installed: AtomicU64,
    rejected: AtomicU64,
    cancelled_by_deadline: AtomicU64,
    retries: AtomicU64,
    breaker_trips: AtomicU64,
    retry: Option<RetryPolicy>,
    breaker: Option<BreakerConfig>,
    /// Breaker state machine (`BREAKER_*` encodings).
    breaker_state: AtomicU8,
    /// Consecutive admission rejections since the last success.
    consecutive_rejections: AtomicU32,
    /// When the breaker last opened, as µs since `born` (Instant is not
    /// atomic; the µs offset is).
    breaker_opened_us: AtomicU64,
    born: Instant,
    install_latency: LatencyHistogram,
}

/// Decrement-on-drop admission slot, so a panicking loop body (or an
/// early return) can never leak in-flight accounting and wedge the
/// tenant at its depth limit. Owns its `Arc` so detached jobs can carry
/// the slot onto a worker and release it when the job finishes.
struct AdmitGuard(Arc<Shared>);

impl Drop for AdmitGuard {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Configures a [`Tenant`]; created via [`Tenant::builder`].
pub struct TenantBuilder {
    name: String,
    class: QosClass,
    weight: u32,
    deadline: Option<Duration>,
    max_in_flight: Option<usize>,
    retry: Option<RetryPolicy>,
    breaker: Option<BreakerConfig>,
}

impl TenantBuilder {
    /// QoS class for every loop this tenant submits. Default:
    /// [`QosClass::Batch`] — latency standing is something a tenant opts
    /// into, not the bulk default.
    pub fn class(mut self, class: QosClass) -> Self {
        self.class = class;
        self
    }

    /// Fair-share weight (≥ 1). Scales the admission window:
    /// `weight * DEFAULT_DEPTH_PER_WEIGHT` loops in flight unless
    /// [`max_in_flight`](Self::max_in_flight) overrides it.
    pub fn weight(mut self, weight: u32) -> Self {
        assert!(weight >= 1, "tenant weight must be at least 1");
        self.weight = weight;
        self
    }

    /// Per-loop deadline: each loop gets a fresh
    /// [`CancelToken::cancel_after`]`(deadline)` and returns
    /// [`TenantError::DeadlineExceeded`] if it fires first.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Explicit admission window, overriding the weight-scaled default.
    pub fn max_in_flight(mut self, depth: usize) -> Self {
        assert!(depth >= 1, "a tenant needs an admission window of at least 1");
        self.max_in_flight = Some(depth);
        self
    }

    /// Retry [`Overloaded`](TenantError::Overloaded) rejections with
    /// jittered exponential backoff before giving up. Without a policy
    /// the tenant never retries (every rejection surfaces immediately).
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Arm a per-tenant circuit breaker: `threshold` *consecutive*
    /// admission rejections open it, submissions then fail fast with
    /// [`TenantError::BreakerOpen`] for `cooldown`, after which a single
    /// half-open probe decides between closing and re-opening. Without
    /// this call the breaker never engages.
    pub fn circuit_breaker(mut self, threshold: u32, cooldown: Duration) -> Self {
        assert!(threshold >= 1, "a breaker needs a threshold of at least 1");
        self.breaker = Some(BreakerConfig { threshold, cooldown });
        self
    }

    /// Build the tenant on the process-global pool (creating the pool
    /// with defaults if this is the first use — see
    /// [`global_pool`](crate::global_pool)).
    pub fn build(self) -> Tenant {
        let pool = global_pool();
        self.build_on(pool)
    }

    /// Build the tenant on an explicit pool (tests, benches, and
    /// embedders that manage their own fleet).
    pub fn build_on(self, pool: Arc<ThreadPool>) -> Tenant {
        let depth_limit =
            self.max_in_flight.unwrap_or(self.weight as usize * DEFAULT_DEPTH_PER_WEIGHT);
        Tenant {
            pool,
            shared: Arc::new(Shared {
                id: NEXT_TENANT_ID.fetch_add(1, Ordering::Relaxed),
                name: self.name,
                class: self.class,
                weight: self.weight,
                deadline: self.deadline,
                depth_limit,
                in_flight: AtomicUsize::new(0),
                installed: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                cancelled_by_deadline: AtomicU64::new(0),
                retries: AtomicU64::new(0),
                breaker_trips: AtomicU64::new(0),
                retry: self.retry,
                breaker: self.breaker,
                breaker_state: AtomicU8::new(BREAKER_CLOSED),
                consecutive_rejections: AtomicU32::new(0),
                breaker_opened_us: AtomicU64::new(0),
                born: Instant::now(),
                install_latency: LatencyHistogram::new(),
            }),
        }
    }
}

/// A caller's handle onto the shared fleet. Cloning is cheap and clones
/// share class, weight, admission window, and stats — hand clones to the
/// tenant's submitter threads.
#[derive(Clone)]
pub struct Tenant {
    pool: Arc<ThreadPool>,
    shared: Arc<Shared>,
}

impl Tenant {
    /// Start configuring a tenant named `name` (names are for humans and
    /// stats; ids tag trace events).
    pub fn builder(name: impl Into<String>) -> TenantBuilder {
        TenantBuilder {
            name: name.into(),
            class: QosClass::Batch,
            weight: 1,
            deadline: None,
            max_in_flight: None,
            retry: None,
            breaker: None,
        }
    }

    /// This tenant's process-unique id (tags `tenant_installed` /
    /// `tenant_deadline` trace events).
    pub fn id(&self) -> u32 {
        self.shared.id
    }

    /// The name given at build time.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// The QoS class every loop of this tenant is injected with.
    pub fn class(&self) -> QosClass {
        self.shared.class
    }

    /// The fair-share weight.
    pub fn weight(&self) -> u32 {
        self.shared.weight
    }

    /// The admission window (maximum in-flight loops).
    pub fn depth_limit(&self) -> usize {
        self.shared.depth_limit
    }

    /// The pool this tenant submits to.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }

    /// Snapshot of this tenant's counters.
    pub fn stats(&self) -> TenantStats {
        TenantStats {
            installed: self.shared.installed.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            cancelled_by_deadline: self.shared.cancelled_by_deadline.load(Ordering::Relaxed),
            retries: self.shared.retries.load(Ordering::Relaxed),
            breaker_trips: self.shared.breaker_trips.load(Ordering::Relaxed),
            in_flight: self.shared.in_flight.load(Ordering::Relaxed),
        }
    }

    /// p50 install latency (admission to first instruction on a worker),
    /// as the upper bound of its log2 bucket. `None` before any install.
    pub fn p50_install_latency(&self) -> Option<Duration> {
        self.shared.install_latency.p50()
    }

    /// p99 install latency; see
    /// [`p50_install_latency`](Self::p50_install_latency).
    pub fn p99_install_latency(&self) -> Option<Duration> {
        self.shared.install_latency.p99()
    }

    /// Claim an admission slot, or reject. The breaker gate runs first
    /// (an open breaker fails fast without touching admission), then the
    /// chaos site, so a forced rejection exercises the exact path real
    /// overload takes.
    fn admit(&self) -> Result<AdmitGuard, TenantError> {
        self.breaker_check()?;
        if self.pool.chaos_enabled() {
            // `Panic` and `Kill` are worker-side faults; at the external
            // admission site both demote to a plain rejection — faults
            // must never unwind into (or kill) user submitter threads.
            match self.pool.chaos_decide_external(Site::Admission) {
                FaultAction::Fail | FaultAction::Panic | FaultAction::Kill => {
                    self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                    self.breaker_record(false);
                    return Err(TenantError::Overloaded);
                }
                FaultAction::Delay(spins) => chaos_spin(spins),
                FaultAction::None => {}
            }
        }
        let mut cur = self.shared.in_flight.load(Ordering::Relaxed);
        loop {
            if cur >= self.shared.depth_limit {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                self.breaker_record(false);
                return Err(TenantError::Overloaded);
            }
            match self.shared.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.breaker_record(true);
                    return Ok(AdmitGuard(Arc::clone(&self.shared)));
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Breaker gate ahead of admission. `Ok` when the breaker is closed,
    /// unconfigured, or this caller won the half-open probe slot; `Err`
    /// while the breaker is open (cooldown running) or another caller
    /// already holds the probe.
    fn breaker_check(&self) -> Result<(), TenantError> {
        let Some(cfg) = self.shared.breaker else { return Ok(()) };
        match self.shared.breaker_state.load(Ordering::Acquire) {
            BREAKER_CLOSED => Ok(()),
            BREAKER_OPEN => {
                let opened =
                    Duration::from_micros(self.shared.breaker_opened_us.load(Ordering::Acquire));
                if self.shared.born.elapsed().saturating_sub(opened) >= cfg.cooldown {
                    // Cooldown over: exactly one caller flips open→half-open
                    // and proceeds as the probe; losers keep failing fast.
                    if self
                        .shared
                        .breaker_state
                        .compare_exchange(
                            BREAKER_OPEN,
                            BREAKER_HALF_OPEN,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        return Ok(());
                    }
                }
                Err(TenantError::BreakerOpen)
            }
            // Half-open: a probe is already in flight; everyone else waits.
            _ => Err(TenantError::BreakerOpen),
        }
    }

    /// Fold one admission outcome into the breaker state machine. A
    /// success closes the breaker (and clears the rejection streak); a
    /// failure extends the streak and — at the threshold, or on a failed
    /// half-open probe — opens the breaker and stamps the cooldown clock.
    fn breaker_record(&self, success: bool) {
        if self.shared.breaker.is_none() {
            return;
        }
        let cfg = self.shared.breaker.unwrap();
        if success {
            self.shared.consecutive_rejections.store(0, Ordering::Relaxed);
            self.shared.breaker_state.store(BREAKER_CLOSED, Ordering::Release);
            return;
        }
        let streak = self.shared.consecutive_rejections.fetch_add(1, Ordering::Relaxed) + 1;
        let state = self.shared.breaker_state.load(Ordering::Acquire);
        let should_open =
            state == BREAKER_HALF_OPEN || (state == BREAKER_CLOSED && streak >= cfg.threshold);
        if should_open {
            self.shared
                .breaker_opened_us
                .store(self.shared.born.elapsed().as_micros() as u64, Ordering::Release);
            self.shared.breaker_state.store(BREAKER_OPEN, Ordering::Release);
            self.shared.breaker_trips.fetch_add(1, Ordering::Relaxed);
            self.pool.trace_external(TraceEvent::BreakerOpen { tenant: self.shared.id });
        }
    }

    /// [`admit`](Self::admit) wrapped in the tenant's [`RetryPolicy`]:
    /// `Overloaded` rejections sleep a jittered exponential backoff and
    /// retry, up to the policy budget. `BreakerOpen` and success return
    /// immediately — retrying into an open breaker would defeat it.
    fn admit_with_retry(&self) -> Result<AdmitGuard, TenantError> {
        let mut err = match self.admit() {
            Ok(slot) => return Ok(slot),
            Err(e) => e,
        };
        let Some(policy) = self.shared.retry else { return Err(err) };
        let salt = (self.shared.id as u64) << 32 | submitter_salt();
        for attempt in 1..=policy.max_retries {
            if err != TenantError::Overloaded {
                break;
            }
            self.shared.retries.fetch_add(1, Ordering::Relaxed);
            self.pool.trace_external(TraceEvent::TenantRetry { tenant: self.shared.id, attempt });
            std::thread::sleep(policy.backoff(attempt, salt));
            match self.admit() {
                Ok(slot) => return Ok(slot),
                Err(e) => err = e,
            }
        }
        Err(err)
    }

    /// A fresh cancellation token for one loop: a deadline token if the
    /// tenant has a deadline (one code path with every other
    /// `cancel_after` user), otherwise a plain never-firing token.
    fn loop_token(&self) -> CancelToken {
        match self.shared.deadline {
            Some(d) => CancelToken::cancel_after(d),
            None => CancelToken::new(),
        }
    }

    /// Run a chunked parallel loop under this tenant's class, weight
    /// window, and deadline. See
    /// [`try_par_for_chunks`](parloop_core::try_par_for_chunks) for the
    /// chunk semantics; on `Err` nothing leaks — admission slots are
    /// released and every chunk that started ran exactly once.
    pub fn par_for_chunks<F>(
        &self,
        range: Range<usize>,
        sched: Schedule,
        body: F,
    ) -> Result<(), TenantError>
    where
        F: Fn(Range<usize>) + Sync,
    {
        let _slot = self.admit_with_retry()?;
        let cancel = self.loop_token();
        let shared = &self.shared;
        let pool = &self.pool;
        let submitted = Instant::now();
        let result = pool.install_class(shared.class, || {
            // First instruction on the worker: the queueing delay QoS is
            // supposed to bound. The nested loop entry below installs
            // inline (same pool), so this is the only injected hop.
            shared.install_latency.record(submitted.elapsed());
            shared.installed.fetch_add(1, Ordering::Relaxed);
            if let Some(token) = WorkerToken::current() {
                token.trace(TraceEvent::TenantInstalled {
                    tenant: shared.id,
                    class: shared.class.as_u8(),
                });
            }
            let r = try_par_for_chunks(pool, range, sched, &cancel, &body);
            if r.is_err() {
                // Still on the worker: the deadline event must be traced
                // here (trace sinks index per-worker rings; the submitter
                // thread has none).
                if let Some(token) = WorkerToken::current() {
                    token.trace(TraceEvent::TenantDeadline { tenant: shared.id });
                }
            }
            r
        });
        match result {
            Ok(()) => Ok(()),
            Err(_cancelled) => {
                shared.cancelled_by_deadline.fetch_add(1, Ordering::Relaxed);
                Err(TenantError::DeadlineExceeded)
            }
        }
    }

    /// Per-index convenience over [`par_for_chunks`](Self::par_for_chunks).
    pub fn par_for<F>(
        &self,
        range: Range<usize>,
        sched: Schedule,
        body: F,
    ) -> Result<(), TenantError>
    where
        F: Fn(usize) + Sync,
    {
        self.par_for_chunks(range, sched, |chunk| {
            for i in chunk {
                body(i);
            }
        })
    }

    /// Fire-and-forget: run `f` on the pool under this tenant's class,
    /// holding one admission slot until the job finishes (the slot rides
    /// inside the job, so a rejected spawn queues nothing and a finished
    /// job frees its slot even if `f` panics).
    pub fn spawn_detached<F>(&self, f: F) -> Result<(), TenantError>
    where
        F: FnOnce() + Send + 'static,
    {
        let slot = self.admit_with_retry()?;
        let shared = Arc::clone(&self.shared);
        let submitted = Instant::now();
        self.pool.spawn_detached_class(shared.class, move || {
            let _slot = slot;
            shared.install_latency.record(submitted.elapsed());
            shared.installed.fetch_add(1, Ordering::Relaxed);
            if let Some(token) = WorkerToken::current() {
                token.trace(TraceEvent::TenantInstalled {
                    tenant: shared.id,
                    class: shared.class.as_u8(),
                });
            }
            f()
        });
        Ok(())
    }

    /// Run an arbitrary closure on the pool under this tenant's class and
    /// admission window (no deadline — the closure has no cooperative
    /// cancellation points).
    pub fn install<R, F>(&self, op: F) -> Result<R, TenantError>
    where
        R: Send,
        F: FnOnce() -> R + Send,
    {
        let _slot = self.admit_with_retry()?;
        let shared = &self.shared;
        let submitted = Instant::now();
        Ok(self.pool.install_class(shared.class, || {
            shared.install_latency.record(submitted.elapsed());
            shared.installed.fetch_add(1, Ordering::Relaxed);
            if let Some(token) = WorkerToken::current() {
                token.trace(TraceEvent::TenantInstalled {
                    tenant: shared.id,
                    class: shared.class.as_u8(),
                });
            }
            op()
        }))
    }
}

impl std::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant")
            .field("id", &self.shared.id)
            .field("name", &self.shared.name)
            .field("class", &self.shared.class)
            .field("weight", &self.shared.weight)
            .field("depth_limit", &self.shared.depth_limit)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parloop_runtime::ThreadPoolBuilder;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::new(3)
            .base_backoff(Duration::from_micros(100))
            .max_backoff(Duration::from_micros(400));
        let first = p.backoff(1, 42);
        assert_eq!(first, p.backoff(1, 42), "same (attempt, salt) must reproduce");
        // attempt 1: raw 100 µs, jitter scales into [50, 100).
        assert!(first >= Duration::from_micros(50) && first < Duration::from_micros(100));
        // attempt 4: 100 µs * 8 = 800 µs, capped at 400, jittered to [200, 400).
        let capped = p.backoff(4, 42);
        assert!(capped >= Duration::from_micros(200) && capped < Duration::from_micros(400));
        assert_ne!(p.backoff(1, 42), p.backoff(1, 43), "salts must decorrelate");
    }

    /// Occupy the tenant's only admission slot until `gate` flips.
    fn hold_slot(tenant: &Tenant, gate: &Arc<AtomicBool>) {
        let g = Arc::clone(gate);
        tenant
            .spawn_detached(move || {
                while !g.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
            })
            .expect("slot holder must admit into an idle tenant");
        // The slot is claimed on this thread, before the job is queued —
        // no need to wait for the worker to pick it up.
    }

    #[test]
    fn retry_recovers_from_transient_overload() {
        let pool = Arc::new(ThreadPoolBuilder::new().num_workers(2).build());
        let tenant = Tenant::builder("retrier")
            .max_in_flight(1)
            .retry_policy(
                RetryPolicy::new(500)
                    .base_backoff(Duration::from_micros(200))
                    .max_backoff(Duration::from_millis(1)),
            )
            .build_on(Arc::clone(&pool));
        let gate = Arc::new(AtomicBool::new(false));
        hold_slot(&tenant, &gate);
        let releaser = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(2));
                gate.store(true, Ordering::Release);
            })
        };
        // Blocks in backoff until the holder finishes, then admits.
        tenant.install(|| ()).expect("retry must outlast a 2 ms transient");
        releaser.join().unwrap();
        let stats = tenant.stats();
        assert!(stats.retries >= 1, "the transient must have cost at least one retry");
        assert_eq!(stats.breaker_trips, 0, "no breaker configured");
    }

    #[test]
    fn breaker_opens_half_opens_and_closes() {
        let pool = Arc::new(ThreadPoolBuilder::new().num_workers(2).build());
        let tenant = Tenant::builder("guarded")
            .max_in_flight(1)
            .circuit_breaker(2, Duration::from_millis(5))
            .build_on(Arc::clone(&pool));
        let gate = Arc::new(AtomicBool::new(false));
        hold_slot(&tenant, &gate);

        // Two real rejections reach the threshold and open the breaker.
        assert_eq!(tenant.install(|| ()).unwrap_err(), TenantError::Overloaded);
        assert_eq!(tenant.install(|| ()).unwrap_err(), TenantError::Overloaded);
        assert_eq!(tenant.stats().breaker_trips, 1);

        // Open: fail fast without touching admission accounting.
        let rejected_before = tenant.stats().rejected;
        assert_eq!(tenant.install(|| ()).unwrap_err(), TenantError::BreakerOpen);
        assert_eq!(tenant.stats().rejected, rejected_before, "fail-fast must skip admission");

        // Cooldown over but the slot is still held: the half-open probe
        // fails and re-opens the breaker.
        std::thread::sleep(Duration::from_millis(6));
        assert_eq!(tenant.install(|| ()).unwrap_err(), TenantError::Overloaded);
        assert_eq!(tenant.stats().breaker_trips, 2, "failed probe must re-open");
        assert_eq!(tenant.install(|| ()).unwrap_err(), TenantError::BreakerOpen);

        // Release the slot, sit out the new cooldown, and let a probe win.
        gate.store(true, Ordering::Release);
        std::thread::sleep(Duration::from_millis(6));
        while tenant.stats().in_flight != 0 {
            std::thread::yield_now();
        }
        tenant.install(|| ()).expect("healed tenant must admit the probe");
        assert_eq!(tenant.stats().breaker_trips, 2, "success must not trip");
        tenant.install(|| ()).expect("breaker must be closed again");
    }
}
