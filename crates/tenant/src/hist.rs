//! A lock-free log2-bucketed latency histogram.
//!
//! Sixty-four buckets, one per power of two of nanoseconds: recording is
//! one relaxed `fetch_add` on the bucket for `floor(log2(nanos))`, so
//! submitter threads can record install latencies concurrently with no
//! lock and no allocation. Quantiles come back as the *upper bound* of
//! the bucket holding the requested rank — at most 2x the true value,
//! which is ample for p50/p99 ratios across orders of magnitude.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Concurrent histogram of durations in power-of-two nanosecond buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; 64],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }

    /// Record one sample. Zero durations land in bucket 0.
    pub fn record(&self, sample: Duration) {
        let nanos = sample.as_nanos().min(u64::MAX as u128) as u64;
        let bucket = nanos.max(1).ilog2() as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded samples (racy snapshot).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// containing that rank; `None` while the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket b is 2^(b+1) - 1 nanos.
                let bound = if bucket >= 63 { u64::MAX } else { (1u64 << (bucket + 1)) - 1 };
                return Some(Duration::from_nanos(bound));
            }
        }
        unreachable!("rank is bounded by the total")
    }

    /// Median sample, by bucket upper bound.
    pub fn p50(&self) -> Option<Duration> {
        self.quantile(0.50)
    }

    /// 99th-percentile sample, by bucket upper bound.
    pub fn p99(&self) -> Option<Duration> {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
    }

    #[test]
    fn quantiles_track_bucket_bounds() {
        let h = LatencyHistogram::new();
        // 99 samples at ~1µs, 1 sample at ~1ms.
        for _ in 0..99 {
            h.record(Duration::from_micros(1));
        }
        h.record(Duration::from_millis(1));
        assert_eq!(h.count(), 100);
        let p50 = h.p50().unwrap();
        let p99 = h.p99().unwrap();
        // p50 stays within 2x of 1µs; p99 still in the µs population.
        assert!(p50 >= Duration::from_micros(1) && p50 < Duration::from_micros(3), "{p50:?}");
        assert!(p99 < Duration::from_micros(3), "{p99:?}");
        // The max (q=1.0) reaches the millisecond outlier's bucket.
        assert!(h.quantile(1.0).unwrap() >= Duration::from_millis(1));
    }

    #[test]
    fn zero_and_huge_samples_do_not_panic() {
        let h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(u64::MAX / 2));
        assert_eq!(h.count(), 2);
        assert!(h.p99().is_some());
    }
}
