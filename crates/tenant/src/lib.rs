//! The multi-tenant layer: many independent callers, one worker fleet.
//!
//! The paper's hybrid scheme assumes one loop owner driving one pool. A
//! service runtime inverts that: thousands of callers share a single
//! fleet, and the scheduler must keep them from trampling each other.
//! This crate adds that sharing layer without touching the loop
//! schedulers themselves:
//!
//! * [`global_pool`] / [`init_global`] / [`teardown_global`] — a
//!   process-global, lazily-initialized registry in the style of rayon's
//!   global pool, with an explicit builder override and clean teardown
//!   for tests;
//! * [`Tenant`] — a cheap, cloneable handle carrying a QoS class
//!   ([`QosClass::Latency`] or [`QosClass::Batch`]), a fair-share weight,
//!   and an optional per-loop deadline that converts into a
//!   [`CancelToken`](parloop_runtime::CancelToken) deadline;
//! * **admission control** — each tenant's in-flight loop count is
//!   bounded by a weight-scaled depth limit; loops beyond it are rejected
//!   with [`TenantError::Overloaded`] instead of buffered without bound,
//!   so one misbehaving tenant saturates its own window, not the pool;
//! * [`TenantStats`] — per-tenant installed / rejected /
//!   deadline-cancelled counts and p50/p99 install latency from a
//!   log2-bucketed histogram.
//!
//! Priority between classes lives *below* this crate, in the runtime's
//! injection lanes: QoS pools drain latency-class jobs ahead of batch
//! work with weighted deficit-round-robin
//! ([`DRR_WEIGHTS`](parloop_runtime::DRR_WEIGHTS)). On single-lane pools
//! (`inject_lanes(1)`, the bench-baseline mode) the sub-lanes degrade to
//! one strict-FIFO queue and the class tag is ignored — admission and
//! deadlines still apply.
//!
//! ```
//! use parloop_tenant::{Tenant, QosClass};
//! use parloop_core::Schedule;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let pool = std::sync::Arc::new(parloop_runtime::ThreadPool::new(2));
//! let t = Tenant::builder("indexer")
//!     .class(QosClass::Batch)
//!     .weight(2)
//!     .build_on(pool);
//! let hits: Vec<AtomicU64> = (0..512).map(|_| AtomicU64::new(0)).collect();
//! t.par_for(0..512, Schedule::hybrid(), |i| {
//!     hits[i].fetch_add(1, Ordering::Relaxed);
//! })
//! .unwrap();
//! assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
//! assert_eq!(t.stats().installed, 1);
//! ```

mod global;
mod hist;
mod tenant;

pub use global::{
    global_pool, global_pool_if_initialized, init_global, teardown_global, GlobalError,
};
pub use hist::LatencyHistogram;
pub use tenant::{
    RetryPolicy, Tenant, TenantBuilder, TenantError, TenantStats, DEFAULT_DEPTH_PER_WEIGHT,
};

/// Re-exported so tenant callers need not name `parloop-runtime` directly.
pub use parloop_runtime::QosClass;
