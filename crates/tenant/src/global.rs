//! The process-global pool registry.
//!
//! Rayon-style semantics: the first use builds a default pool (one worker
//! per available core), [`init_global`] installs a custom configuration
//! but errors once any pool exists, and — unlike rayon's leaked `Once`
//! registry — [`teardown_global`] can shut the pool down again so tests
//! can verify no worker threads leak. A `Mutex<Option<Arc<..>>>` instead
//! of a `Once` is what makes teardown possible; the lock is only touched
//! on pool acquisition (handles clone the `Arc` once and keep it), so it
//! is nowhere near any loop hot path.

use std::sync::{Arc, Mutex, PoisonError};

use parloop_runtime::{ThreadPool, ThreadPoolBuilder};

static GLOBAL: Mutex<Option<Arc<ThreadPool>>> = Mutex::new(None);

/// Errors from explicit global-registry management.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalError {
    /// [`init_global`] was called after the global pool already existed
    /// (built explicitly earlier, or lazily by a [`global_pool`] call).
    AlreadyInitialized,
    /// [`teardown_global`] found outstanding references to the global
    /// pool (live [`Tenant`](crate::Tenant) handles or `Arc` clones); the
    /// pool was left running.
    Busy,
}

impl std::fmt::Display for GlobalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GlobalError::AlreadyInitialized => {
                f.write_str("the global pool is already initialized")
            }
            GlobalError::Busy => f.write_str("the global pool still has outstanding references"),
        }
    }
}

impl std::error::Error for GlobalError {}

/// Ignore mutex poisoning: the registry state (an `Option<Arc>`) is valid
/// after any panic, and tests that panic must not wedge every later test.
fn lock() -> std::sync::MutexGuard<'static, Option<Arc<ThreadPool>>> {
    GLOBAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The process-global pool, building it with default settings (one worker
/// per available core) on first use. Concurrent first calls race on the
/// registry lock; exactly one builds, the rest receive the same pool.
pub fn global_pool() -> Arc<ThreadPool> {
    let mut g = lock();
    g.get_or_insert_with(|| {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Arc::new(
            ThreadPoolBuilder::new().num_workers(n).thread_name_prefix("parloop-global").build(),
        )
    })
    .clone()
}

/// The global pool if one exists, without triggering lazy construction.
pub fn global_pool_if_initialized() -> Option<Arc<ThreadPool>> {
    lock().clone()
}

/// Install a custom-configured global pool. Fails with
/// [`GlobalError::AlreadyInitialized`] if any global pool already exists
/// — call it before the first [`global_pool`] use (rayon's
/// `build_global` contract).
pub fn init_global(builder: ThreadPoolBuilder) -> Result<Arc<ThreadPool>, GlobalError> {
    let mut g = lock();
    if g.is_some() {
        return Err(GlobalError::AlreadyInitialized);
    }
    let pool = Arc::new(builder.build());
    *g = Some(Arc::clone(&pool));
    Ok(pool)
}

/// Shut the global pool down, joining its worker threads. `Ok(true)` if a
/// pool was torn down, `Ok(false)` if none existed;
/// [`GlobalError::Busy`] (pool left running) if other `Arc` references
/// are still outstanding — drop tenant handles first.
pub fn teardown_global() -> Result<bool, GlobalError> {
    let mut g = lock();
    match g.take() {
        None => Ok(false),
        Some(pool) => match Arc::try_unwrap(pool) {
            Ok(pool) => {
                // Drop outside nothing: joining here, under the registry
                // lock, is fine — workers never touch the registry.
                drop(pool);
                Ok(true)
            }
            Err(pool) => {
                *g = Some(pool);
                Err(GlobalError::Busy)
            }
        },
    }
}
