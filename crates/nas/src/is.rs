//! IS — the NAS integer sort kernel (bucket sort of small integer keys).
//!
//! Keys follow the NPB distribution: each key is the scaled average of
//! four uniform deviates from the NAS LCG, giving a centered (roughly
//! binomial) histogram. Ranking proceeds in three parallel phases:
//!
//! 1. **histogram** — per-block private histograms merged into a global
//!    one (this is the loop whose scattered shared writes make IS a
//!    locality stress test);
//! 2. **prefix** — an exclusive scan over the (small) key universe,
//!    done sequentially as in NPB;
//! 3. **permute** — each block writes its keys to their ranked positions
//!    via per-key cursors.

use std::sync::atomic::{AtomicU64, Ordering};

use parloop_core::{par_for, Schedule};
use parloop_runtime::ThreadPool;

use crate::randdp::{randlc, A, SEED};
use crate::util::UnsafeSlice;

/// IS problem size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsParams {
    /// log2 of the number of keys.
    pub n_log: u32,
    /// log2 of the key universe size (max key + 1).
    pub key_log: u32,
    /// Number of parallel blocks for histogram/permute loops.
    pub blocks: usize,
}

impl IsParams {
    /// NAS class S: 2^16 keys over 2^11 values.
    pub fn class_s() -> Self {
        IsParams { n_log: 16, key_log: 11, blocks: 128 }
    }

    /// A miniature size for fast tests.
    pub fn mini() -> Self {
        IsParams { n_log: 12, key_log: 8, blocks: 32 }
    }

    pub fn n(&self) -> usize {
        1 << self.n_log
    }

    pub fn max_key(&self) -> usize {
        1 << self.key_log
    }
}

/// Generate the NPB key sequence: `k_i = ⌊(r1+r2+r3+r4)/4 · max_key⌋`.
pub fn generate_keys(params: IsParams) -> Vec<u32> {
    let mut x = SEED;
    let max_key = params.max_key() as f64;
    (0..params.n())
        .map(|_| {
            let s: f64 = (0..4).map(|_| randlc(&mut x, A)).sum();
            ((s / 4.0) * max_key) as u32
        })
        .collect()
}

/// Result of a full rank-and-sort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsResult {
    pub sorted: Vec<u32>,
    pub histogram: Vec<u64>,
}

/// Sort `keys` with parallel loops scheduled by `sched`.
pub fn is_sort(pool: &ThreadPool, params: IsParams, keys: &[u32], sched: Schedule) -> IsResult {
    let n = keys.len();
    let universe = params.max_key();
    let blocks = params.blocks.min(n.max(1));

    // Phase 1: histogram (shared atomic buckets — the scattered-write loop).
    let hist: Vec<AtomicU64> = (0..universe).map(|_| AtomicU64::new(0)).collect();
    par_for(pool, 0..blocks, sched, |b| {
        let r = parloop_core::block_bounds(n, blocks, b);
        // Private tally first, then one merge pass — NPB's approach.
        let mut local = vec![0u64; universe];
        for &k in &keys[r] {
            local[k as usize] += 1;
        }
        for (slot, &c) in hist.iter().zip(&local) {
            if c > 0 {
                slot.fetch_add(c, Ordering::Relaxed);
            }
        }
    });
    let histogram: Vec<u64> = hist.iter().map(|h| h.load(Ordering::Relaxed)).collect();

    // Phase 2: exclusive prefix sum (sequential, tiny).
    let mut cursors: Vec<AtomicU64> = Vec::with_capacity(universe);
    let mut acc = 0u64;
    for &c in &histogram {
        cursors.push(AtomicU64::new(acc));
        acc += c;
    }
    debug_assert_eq!(acc as usize, n);

    // Phase 3: permute into ranked positions.
    let mut sorted = vec![0u32; n];
    {
        let out = UnsafeSlice::new(&mut sorted);
        let cursors = &cursors;
        par_for(pool, 0..blocks, sched, |b| {
            let r = parloop_core::block_bounds(n, blocks, b);
            for &k in &keys[r] {
                let pos = cursors[k as usize].fetch_add(1, Ordering::Relaxed) as usize;
                // SAFETY: `pos` values are unique (fetch_add) and < n.
                unsafe { out.write(pos, k) };
            }
        });
    }

    IsResult { sorted, histogram }
}

/// Fully sequential reference.
pub fn is_sort_sequential(params: IsParams, keys: &[u32]) -> IsResult {
    let mut histogram = vec![0u64; params.max_key()];
    for &k in keys {
        histogram[k as usize] += 1;
    }
    let mut sorted = keys.to_vec();
    sorted.sort_unstable();
    IsResult { sorted, histogram }
}

/// Rank of `key` given the global histogram: number of keys strictly
/// smaller (the position its first copy takes in the sorted output).
pub fn rank_of(histogram: &[u64], key: u32) -> u64 {
    histogram[..key as usize].iter().sum()
}

/// Result of the full NPB-style benchmark loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsBenchResult {
    /// `(probe_key, rank)` pairs recorded each iteration — NPB's partial
    /// verification values.
    pub partial_ranks: Vec<(u32, u64)>,
    /// Final full sort passed verification.
    pub final_verified: bool,
}

/// The full NPB IS benchmark: `iterations` ranking passes, perturbing two
/// keys per pass (as NPB does to defeat result caching), recording partial
/// ranks, and fully sorting + verifying at the end.
pub fn is_bench(
    pool: &ThreadPool,
    params: IsParams,
    sched: Schedule,
    iterations: usize,
) -> IsBenchResult {
    let mut keys = generate_keys(params);
    let max_key = params.max_key() as u32;
    let n = keys.len();
    assert!(2 * iterations + 1 < n, "too many iterations for the key count");

    let mut partial_ranks = Vec::with_capacity(iterations * 2);
    let mut last = None;
    for it in 1..=iterations {
        // NPB's per-iteration perturbation.
        keys[it] = it as u32 % max_key;
        keys[it + iterations] = (max_key - it as u32) % max_key;

        let r = is_sort(pool, params, &keys, sched);
        partial_ranks.push((keys[it], rank_of(&r.histogram, keys[it])));
        partial_ranks.push((keys[it + iterations], rank_of(&r.histogram, keys[it + iterations])));
        last = Some(r);
    }
    let final_verified = match last {
        Some(r) => verify(&keys, &r),
        None => is_sort(pool, params, &keys, sched).sorted.windows(2).all(|w| w[0] <= w[1]),
    };
    IsBenchResult { partial_ranks, final_verified }
}

/// NPB-style verification: the output is sorted and is a permutation of
/// the input.
pub fn verify(keys: &[u32], result: &IsResult) -> bool {
    if result.sorted.len() != keys.len() {
        return false;
    }
    if result.sorted.windows(2).any(|w| w[0] > w[1]) {
        return false;
    }
    let total: u64 = result.histogram.iter().sum();
    if total as usize != keys.len() {
        return false;
    }
    // Histogram must match the sorted output's run lengths.
    let mut seen = vec![0u64; result.histogram.len()];
    for &k in &result.sorted {
        match seen.get_mut(k as usize) {
            Some(s) => *s += 1,
            None => return false,
        }
    }
    seen == result.histogram
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_distribution_is_centered() {
        let params = IsParams::mini();
        let keys = generate_keys(params);
        let mean: f64 = keys.iter().map(|&k| k as f64).sum::<f64>() / keys.len() as f64;
        let mid = params.max_key() as f64 / 2.0;
        assert!((mean - mid).abs() < mid * 0.05, "mean {mean} vs mid {mid}");
        assert!(keys.iter().all(|&k| (k as usize) < params.max_key()));
    }

    #[test]
    fn sequential_reference_verifies() {
        let params = IsParams::mini();
        let keys = generate_keys(params);
        let r = is_sort_sequential(params, &keys);
        assert!(verify(&keys, &r));
    }

    #[test]
    fn parallel_sort_matches_sequential_for_all_schedules() {
        let pool = ThreadPool::new(3);
        let params = IsParams::mini();
        let keys = generate_keys(params);
        let reference = is_sort_sequential(params, &keys);
        for sched in Schedule::roster(params.blocks, 3) {
            let r = is_sort(&pool, params, &keys, sched);
            assert!(verify(&keys, &r), "{}: verification failed", sched.name());
            assert_eq!(r.sorted, reference.sorted, "{}", sched.name());
            assert_eq!(r.histogram, reference.histogram, "{}", sched.name());
        }
    }

    #[test]
    fn verify_rejects_corruption() {
        let params = IsParams::mini();
        let keys = generate_keys(params);
        let mut r = is_sort_sequential(params, &keys);
        r.sorted[0] = r.sorted[r.sorted.len() - 1] + 1; // break sortedness
        assert!(!verify(&keys, &r));
        let mut r2 = is_sort_sequential(params, &keys);
        r2.histogram[0] += 1; // break conservation
        assert!(!verify(&keys, &r2));
    }

    #[test]
    fn rank_of_matches_sorted_position() {
        let params = IsParams::mini();
        let keys = generate_keys(params);
        let r = is_sort_sequential(params, &keys);
        for probe in [0u32, 1, 5, 100] {
            let rank = rank_of(&r.histogram, probe) as usize;
            // All keys before `rank` are < probe; all at/after are >= probe.
            assert!(r.sorted[..rank].iter().all(|&k| k < probe));
            assert!(r.sorted[rank..].iter().all(|&k| k >= probe));
        }
    }

    #[test]
    fn bench_loop_partial_ranks_agree_across_schedulers() {
        let pool = ThreadPool::new(3);
        let params = IsParams::mini();
        let reference = is_bench(&pool, params, Schedule::omp_static(), 5);
        assert!(reference.final_verified);
        assert_eq!(reference.partial_ranks.len(), 10);
        for sched in [Schedule::hybrid(), Schedule::vanilla(), Schedule::omp_guided()] {
            let r = is_bench(&pool, params, sched, 5);
            assert!(r.final_verified, "{}", sched.name());
            assert_eq!(r.partial_ranks, reference.partial_ranks, "{}", sched.name());
        }
    }

    #[test]
    fn handles_single_block() {
        let pool = ThreadPool::new(2);
        let params = IsParams { n_log: 8, key_log: 4, blocks: 1 };
        let keys = generate_keys(params);
        let r = is_sort(&pool, params, &keys, Schedule::hybrid());
        assert!(verify(&keys, &r));
    }
}
