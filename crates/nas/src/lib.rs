//! Rust ports of the five NAS Parallel Benchmark kernels used in the
//! paper's evaluation (Section V): **EP**, **MG**, **CG**, **FT**, **IS**.
//!
//! Every kernel takes a [`Schedule`], so the identical numeric code runs
//! under the paper's hybrid scheme and under each baseline scheduler —
//! which is exactly the comparison the paper makes. Each kernel module
//! also ships a sequential reference and a verification predicate; the
//! test suite asserts that all schedulers produce the same result (exactly
//! for integer outputs, to rounding for floating-point reductions, whose
//! summation order legitimately depends on scheduling).
//!
//! Substitutions relative to NPB 3.3.1 (see DESIGN.md):
//! * CG's `makea` generator → a synthetic random symmetric diagonally-
//!   dominant matrix with the same shape knobs;
//! * problem classes are scaled to laptop-size (`class_s`/`mini`
//!   constructors) — the paper's classes B/C exist only as *workload
//!   models* in `parloop-sim`, where the 32-core machine is simulated.

pub mod cg;
pub mod ep;
pub mod ft;
pub mod is;
pub mod mg;
pub mod randdp;
pub mod util;

use std::time::{Duration, Instant};

use parloop_core::Schedule;
use parloop_runtime::ThreadPool;

/// The five kernels, in the paper's Figure 3 order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    Mg,
    Ft,
    Ep,
    Is,
    Cg,
}

impl Kernel {
    pub const ALL: [Kernel; 5] = [Kernel::Mg, Kernel::Ft, Kernel::Ep, Kernel::Is, Kernel::Cg];

    pub fn name(self) -> &'static str {
        match self {
            Kernel::Mg => "mg",
            Kernel::Ft => "ft",
            Kernel::Ep => "ep",
            Kernel::Is => "is",
            Kernel::Cg => "cg",
        }
    }
}

/// Problem-size selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassSize {
    /// NAS class-S-shaped sizes.
    S,
    /// Miniature sizes for quick runs and tests.
    Mini,
}

/// Outcome of running one kernel once.
#[derive(Debug, Clone)]
pub struct KernelReport {
    pub kernel: Kernel,
    pub schedule: &'static str,
    pub elapsed: Duration,
    /// Kernel-specific verification passed.
    pub verified: bool,
    /// Human-readable headline metric (`zeta`, `rnorm`, checksum, …).
    pub metric: String,
}

/// Run `kernel` at `class` size under `sched`, verifying the result.
pub fn run_kernel(
    pool: &ThreadPool,
    kernel: Kernel,
    class: ClassSize,
    sched: Schedule,
) -> KernelReport {
    let t0 = Instant::now();
    let (verified, metric) = match kernel {
        Kernel::Ep => {
            let params = match class {
                ClassSize::S => ep::EpParams::class_s(),
                ClassSize::Mini => ep::EpParams::mini(),
            };
            let r = ep::ep(pool, params, sched);
            let total = (params.blocks() * params.pairs_per_block()) as f64;
            let rate = r.accepted as f64 / total;
            (
                (rate - std::f64::consts::FRAC_PI_4).abs() < 0.01,
                format!("sx={:.6e} sy={:.6e} pairs={}", r.sx, r.sy, r.accepted),
            )
        }
        Kernel::Mg => {
            let params = match class {
                ClassSize::S => mg::MgParams::class_s(),
                ClassSize::Mini => mg::MgParams::mini(),
            };
            let r = mg::mg(pool, params, sched);
            let contracted = r.history.first().map(|&f| r.rnorm < f).unwrap_or(false);
            (contracted, format!("rnorm={:.6e}", r.rnorm))
        }
        Kernel::Cg => {
            let params = match class {
                ClassSize::S => cg::CgParams::class_s(),
                ClassSize::Mini => cg::CgParams::mini(),
            };
            let a = cg::make_matrix(params);
            let r = cg::cg(pool, &a, params, sched);
            (
                r.rnorm < 1e-6 && r.zeta.is_finite(),
                format!("zeta={:.12} rnorm={:.3e}", r.zeta, r.rnorm),
            )
        }
        Kernel::Ft => {
            let params = match class {
                ClassSize::S => ft::FtParams::class_s(),
                ClassSize::Mini => ft::FtParams::mini(),
            };
            let r = ft::ft(pool, params, sched);
            let last = r.checksums.last().copied().unwrap_or(ft::Complex::ZERO);
            (
                r.checksums.iter().all(|c| c.re.is_finite() && c.im.is_finite()),
                format!("checksum={:.9e}{:+.9e}i", last.re, last.im),
            )
        }
        Kernel::Is => {
            let params = match class {
                ClassSize::S => is::IsParams::class_s(),
                ClassSize::Mini => is::IsParams::mini(),
            };
            let keys = is::generate_keys(params);
            let r = is::is_sort(pool, params, &keys, sched);
            let ok = is::verify(&keys, &r);
            (ok, format!("keys={} buckets={}", keys.len(), r.histogram.len()))
        }
    };
    KernelReport { kernel, schedule: sched.name(), elapsed: t0.elapsed(), verified, metric }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_verifies_under_hybrid() {
        let pool = ThreadPool::new(2);
        for k in Kernel::ALL {
            let rep = run_kernel(&pool, k, ClassSize::Mini, Schedule::hybrid());
            assert!(rep.verified, "{} failed: {}", k.name(), rep.metric);
        }
    }

    #[test]
    fn kernel_names_in_figure_order() {
        let names: Vec<_> = Kernel::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["mg", "ft", "ep", "is", "cg"]);
    }
}
