//! MG — V-cycle multigrid on a 3D periodic grid (NAS MG structure).
//!
//! Solves `A u = v` where `A` is the NPB 27-point Poisson-like stencil,
//! by repeated V-cycles: restrict the residual down a grid hierarchy
//! (full weighting, `rprj3`), smooth at the coarsest level (`psinv`),
//! then interpolate corrections back up (trilinear `interp`) with
//! smoothing at each level. All stencil sweeps are parallel loops over
//! the outermost (`i3`) planes — each operator writes one array while
//! reading others, so plane-parallel iterations are race-free.
//!
//! The right-hand side follows NPB: `v` is −1 at ten pseudo-random points
//! and +1 at ten others, zero elsewhere.

use parloop_core::{par_for, Schedule};
use parloop_runtime::ThreadPool;

use crate::randdp::{randlc, A as LCG_A, SEED};
use crate::util::{par_sum, UnsafeSlice};

/// The `A` operator weights by neighbor distance class (center, face,
/// edge, corner) — NPB's `a` array.
const A_W: [f64; 4] = [-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0];
/// The smoother weights — NPB's `c` array for classes S/W/A.
const C_W: [f64; 4] = [-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0];
/// Full-weighting restriction weights by distance class.
const R_W: [f64; 4] = [0.5, 0.25, 0.125, 0.0625];

/// MG problem parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MgParams {
    /// Finest grid edge (power of two).
    pub n: usize,
    /// Number of V-cycles.
    pub iters: usize,
}

impl MgParams {
    /// NAS class-S shape: 32³ grid, 4 iterations.
    pub fn class_s() -> Self {
        MgParams { n: 32, iters: 4 }
    }

    /// Miniature instance for fast tests.
    pub fn mini() -> Self {
        MgParams { n: 16, iters: 2 }
    }

    /// Grid levels down to edge 2.
    pub fn levels(&self) -> usize {
        assert!(self.n.is_power_of_two() && self.n >= 4);
        self.n.trailing_zeros() as usize // n=32 -> 5 levels: 32,16,8,4,2
    }
}

/// A cubic periodic grid of edge `n`, flattened.
#[derive(Debug, Clone)]
pub struct Grid {
    pub n: usize,
    pub data: Vec<f64>,
}

impl Grid {
    pub fn zeros(n: usize) -> Self {
        Grid { n, data: vec![0.0; n * n * n] }
    }

    #[inline]
    fn at(&self, i3: usize, i2: usize, i1: usize) -> f64 {
        self.data[(i3 * self.n + i2) * self.n + i1]
    }

    /// Periodic neighbor coordinate.
    #[inline]
    fn wrap(n: usize, i: usize, d: isize) -> usize {
        (i as isize + d).rem_euclid(n as isize) as usize
    }

    /// Weighted 27-point gather around `(i3, i2, i1)` with per-distance-
    /// class weights `w`.
    fn stencil(&self, w: &[f64; 4], i3: usize, i2: usize, i1: usize) -> f64 {
        let n = self.n;
        let mut s = 0.0;
        for d3 in -1isize..=1 {
            let j3 = Self::wrap(n, i3, d3);
            for d2 in -1isize..=1 {
                let j2 = Self::wrap(n, i2, d2);
                for d1 in -1isize..=1 {
                    let class = (d3.abs() + d2.abs() + d1.abs()) as usize;
                    if w[class] == 0.0 {
                        continue;
                    }
                    let j1 = Self::wrap(n, i1, d1);
                    s += w[class] * self.at(j3, j2, j1);
                }
            }
        }
        s
    }
}

/// Plane-parallel sweep writing `out[i3] = f(i3, i2, i1)`.
fn sweep(
    pool: &ThreadPool,
    sched: Schedule,
    out: &mut Grid,
    f: impl Fn(usize, usize, usize) -> f64 + Sync,
) {
    let n = out.n;
    let slice = UnsafeSlice::new(&mut out.data);
    par_for(pool, 0..n, sched, |i3| {
        for i2 in 0..n {
            for i1 in 0..n {
                // SAFETY: plane i3 is written only by iteration i3.
                unsafe { slice.write((i3 * n + i2) * n + i1, f(i3, i2, i1)) };
            }
        }
    });
}

/// `r = v − A u` (NPB `resid`).
fn resid(pool: &ThreadPool, sched: Schedule, r: &mut Grid, u: &Grid, v: &Grid) {
    sweep(pool, sched, r, |i3, i2, i1| v.at(i3, i2, i1) - u.stencil(&A_W, i3, i2, i1));
}

/// `u += S r` (NPB `psinv` smoother).
fn psinv(pool: &ThreadPool, sched: Schedule, u: &mut Grid, r: &Grid) {
    let n = u.n;
    let slice = UnsafeSlice::new(&mut u.data);
    par_for(pool, 0..n, sched, |i3| {
        for i2 in 0..n {
            for i1 in 0..n {
                let idx = (i3 * n + i2) * n + i1;
                let add = r.stencil(&C_W, i3, i2, i1);
                unsafe { slice.write(idx, slice.read(idx) + add) };
            }
        }
    });
}

/// Full-weighting restriction: coarse `out` from fine `fine` (NPB `rprj3`).
fn rprj3(pool: &ThreadPool, sched: Schedule, out: &mut Grid, fine: &Grid) {
    debug_assert_eq!(out.n * 2, fine.n);
    sweep(pool, sched, out, |i3, i2, i1| {
        // Gather the fine 3³ neighborhood around (2i3, 2i2, 2i1).
        fine.stencil(&R_W, 2 * i3, 2 * i2, 2 * i1) / 4.0
    });
}

/// Trilinear prolongation: `fine += P coarse` (NPB `interp`).
fn interp(pool: &ThreadPool, sched: Schedule, fine: &mut Grid, coarse: &Grid) {
    debug_assert_eq!(coarse.n * 2, fine.n);
    let nf = fine.n;
    let nc = coarse.n;
    let slice = UnsafeSlice::new(&mut fine.data);
    par_for(pool, 0..nf, sched, |f3| {
        let (c3, o3) = (f3 / 2, f3 % 2);
        for f2 in 0..nf {
            let (c2, o2) = (f2 / 2, f2 % 2);
            for f1 in 0..nf {
                let (c1, o1) = (f1 / 2, f1 % 2);
                // Average the coarse corners adjacent to this fine point.
                let mut s = 0.0;
                for d3 in 0..=o3 {
                    for d2 in 0..=o2 {
                        for d1 in 0..=o1 {
                            s += coarse.at((c3 + d3) % nc, (c2 + d2) % nc, (c1 + d1) % nc);
                        }
                    }
                }
                let w = 1.0 / ((1 + o3) * (1 + o2) * (1 + o1)) as f64;
                let idx = (f3 * nf + f2) * nf + f1;
                unsafe { slice.write(idx, slice.read(idx) + w * s) };
            }
        }
    });
}

/// NPB `norm2u3`: the grid's RMS norm and maximum absolute value.
fn norm2u3(pool: &ThreadPool, sched: Schedule, g: &Grid) -> (f64, f64) {
    let n = g.n;
    let sum = par_sum(pool, 0..n, sched, |i3| {
        let mut s = 0.0;
        for i2 in 0..n {
            for i1 in 0..n {
                let v = g.at(i3, i2, i1);
                s += v * v;
            }
        }
        s
    });
    let maxabs = crate::util::par_max_abs(pool, 0..n, sched, |i3| {
        let mut m = 0.0_f64;
        for i2 in 0..n {
            for i1 in 0..n {
                m = m.max(g.at(i3, i2, i1).abs());
            }
        }
        m
    });
    ((sum / (n * n * n) as f64).sqrt(), maxabs)
}

/// NPB-style right-hand side: ±1 at 2×10 pseudo-random points.
pub fn make_rhs(n: usize) -> Grid {
    let mut v = Grid::zeros(n);
    let mut x = SEED;
    let total = n * n * n;
    for sign in [1.0, -1.0] {
        for _ in 0..10 {
            let idx = (randlc(&mut x, LCG_A) * total as f64) as usize % total;
            v.data[idx] = sign;
        }
    }
    v
}

/// MG output.
#[derive(Debug, Clone, PartialEq)]
pub struct MgResult {
    /// L2 norm of the final residual.
    pub rnorm: f64,
    /// Maximum absolute residual component (NPB `norm2u3`'s second output).
    pub rnorm_max: f64,
    /// Residual norms after each V-cycle.
    pub history: Vec<f64>,
}

/// Run `iters` V-cycles under `sched`; returns the residual norms.
pub fn mg(pool: &ThreadPool, params: MgParams, sched: Schedule) -> MgResult {
    let lt = params.levels(); // levels: edge n >> k for k in 0..lt
    let v = make_rhs(params.n);
    let mut u = Grid::zeros(params.n);
    let mut r_levels: Vec<Grid> = (0..lt).map(|k| Grid::zeros(params.n >> k)).collect();
    let mut u_levels: Vec<Grid> = (1..lt).map(|k| Grid::zeros(params.n >> k)).collect();

    resid(pool, sched, &mut r_levels[0], &u, &v);
    let mut history = Vec::with_capacity(params.iters);

    for _ in 0..params.iters {
        // Down: restrict the residual to the coarsest level.
        for k in 0..lt - 1 {
            let (fine, coarse) = r_levels.split_at_mut(k + 1);
            rprj3(pool, sched, &mut coarse[0], &fine[k]);
        }
        // Coarsest: u = S r.
        {
            let uc = &mut u_levels[lt - 2];
            uc.data.fill(0.0);
            psinv(pool, sched, uc, &r_levels[lt - 1]);
        }
        // Up: interpolate, recompute residual, smooth.
        for k in (1..lt - 1).rev() {
            // u_k starts as zero plus the interpolated correction.
            let (finer, coarser) = u_levels.split_at_mut(k);
            let uk = &mut finer[k - 1]; // grid with edge n >> k
            uk.data.fill(0.0);
            interp(pool, sched, uk, &coarser[0]);
            // r_k = r_k − A u_k, then u_k += S r_k.
            let mut tmp = Grid::zeros(uk.n);
            resid(pool, sched, &mut tmp, uk, &r_levels[k]);
            psinv(pool, sched, uk, &tmp);
        }
        // Finest level: apply the correction to u, refresh r, smooth.
        interp(pool, sched, &mut u, &u_levels[0]);
        resid(pool, sched, &mut r_levels[0], &u, &v);
        psinv(pool, sched, &mut u, &r_levels[0]);
        resid(pool, sched, &mut r_levels[0], &u, &v);
        let (l2, _) = norm2u3(pool, sched, &r_levels[0]);
        history.push(l2);
    }

    let (_, rnorm_max) = norm2u3(pool, sched, &r_levels[0]);
    MgResult { rnorm: *history.last().expect("at least one iteration"), rnorm_max, history }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rhs_has_twenty_nonzeros_at_most() {
        let v = make_rhs(16);
        let nz = v.data.iter().filter(|&&x| x != 0.0).count();
        assert!((10..=20).contains(&nz), "nz = {nz}");
        assert!(v.data.iter().all(|&x| x == 0.0 || x == 1.0 || x == -1.0));
    }

    #[test]
    fn stencil_weights_sum_applies_to_constant_grid() {
        let mut g = Grid::zeros(8);
        g.data.fill(2.0);
        // Σ weights over 27 points: w0·1 + w1·6 + w2·12 + w3·8.
        let wsum = A_W[0] + 6.0 * A_W[1] + 12.0 * A_W[2] + 8.0 * A_W[3];
        let got = g.stencil(&A_W, 3, 4, 5);
        assert!((got - 2.0 * wsum).abs() < 1e-12);
    }

    #[test]
    fn residual_decreases_across_v_cycles() {
        let pool = ThreadPool::new(2);
        let r = mg(&pool, MgParams::mini(), Schedule::hybrid());
        assert!(r.history.len() == 2);
        assert!(r.history[1] < r.history[0], "V-cycle did not contract: {:?}", r.history);
    }

    #[test]
    fn max_residual_bounds_are_consistent() {
        let pool = ThreadPool::new(2);
        let params = MgParams::mini();
        let r = mg(&pool, params, Schedule::hybrid());
        // RMS <= max <= RMS * sqrt(points).
        let points = (params.n * params.n * params.n) as f64;
        assert!(r.rnorm_max >= r.rnorm, "max {} < rms {}", r.rnorm_max, r.rnorm);
        assert!(r.rnorm_max <= r.rnorm * points.sqrt() + 1e-12);
    }

    #[test]
    fn all_schedules_agree_on_rnorm() {
        let pool = ThreadPool::new(3);
        let params = MgParams::mini();
        let reference = mg(&pool, params, Schedule::omp_static());
        for sched in Schedule::roster(params.n, 3) {
            let r = mg(&pool, params, sched);
            let rel = ((r.rnorm - reference.rnorm) / reference.rnorm).abs();
            assert!(rel < 1e-10, "{}: rnorm {} vs {}", sched.name(), r.rnorm, reference.rnorm);
        }
    }

    #[test]
    fn interp_of_constant_coarse_adds_constant() {
        let pool = ThreadPool::new(2);
        let mut fine = Grid::zeros(8);
        let mut coarse = Grid::zeros(4);
        coarse.data.fill(3.0);
        interp(&pool, Schedule::vanilla(), &mut fine, &coarse);
        for &x in &fine.data {
            assert!((x - 3.0).abs() < 1e-12, "interp broke constants: {x}");
        }
    }

    #[test]
    fn rprj3_of_constant_fine_gives_constant() {
        let pool = ThreadPool::new(2);
        let mut coarse = Grid::zeros(4);
        let mut fine = Grid::zeros(8);
        fine.data.fill(1.0);
        rprj3(&pool, Schedule::vanilla(), &mut coarse, &fine);
        // Σ R_W over 27 points, divided by 4 (normalization).
        let wsum = (R_W[0] + 6.0 * R_W[1] + 12.0 * R_W[2] + 8.0 * R_W[3]) / 4.0;
        for &x in &coarse.data {
            assert!((x - wsum).abs() < 1e-12);
        }
    }
}
