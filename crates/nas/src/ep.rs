//! EP — the NAS "embarrassingly parallel" kernel.
//!
//! Generates `2^m` pairs of uniform deviates, maps each accepted pair
//! through the Marsaglia polar method to a pair of Gaussian deviates,
//! and tallies the sums `sx`, `sy` plus the annulus counts `q[0..10]`
//! (pairs binned by `max(|X|, |Y|)`).
//!
//! The parallel loop runs over *blocks* of `2^nk_log` pairs; each block
//! seeds its generator independently via the LCG jump-ahead, so any
//! scheduler may execute blocks in any order and on any worker without
//! changing the result (up to floating-point summation order of the
//! block partials).

use parloop_core::Schedule;
use parloop_runtime::ThreadPool;

use crate::randdp::{power_mod, randlc, A, SEED};
use crate::util::par_sum;

/// EP problem size: `2^m` pairs processed in blocks of `2^nk_log`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpParams {
    pub m: u32,
    pub nk_log: u32,
}

impl EpParams {
    /// NAS class S (2^24 pairs).
    pub fn class_s() -> Self {
        EpParams { m: 24, nk_log: 16 }
    }

    /// A miniature size for fast tests (2^18 pairs in 256 blocks).
    pub fn mini() -> Self {
        EpParams { m: 18, nk_log: 10 }
    }

    /// Number of parallel blocks.
    pub fn blocks(&self) -> usize {
        assert!(self.m >= self.nk_log);
        1usize << (self.m - self.nk_log)
    }

    /// Pairs per block.
    pub fn pairs_per_block(&self) -> usize {
        1usize << self.nk_log
    }
}

/// EP result: Gaussian sums and annulus counts.
#[derive(Debug, Clone, PartialEq)]
pub struct EpResult {
    pub sx: f64,
    pub sy: f64,
    pub q: [u64; 10],
    /// Accepted pairs (= Σ q).
    pub accepted: u64,
}

/// Per-block tally, merged across the parallel loop.
fn block_tally(params: EpParams, block: usize) -> (f64, f64, [u64; 10]) {
    let pairs = params.pairs_per_block();
    // Jump the seed past the 2·pairs deviates of all preceding blocks.
    let jump = power_mod(A, (block as u64) * 2 * pairs as u64);
    let mut x = SEED;
    randlc(&mut x, jump);

    let (mut sx, mut sy) = (0.0_f64, 0.0_f64);
    let mut q = [0u64; 10];
    for _ in 0..pairs {
        let u1 = 2.0 * randlc(&mut x, A) - 1.0;
        let u2 = 2.0 * randlc(&mut x, A) - 1.0;
        let t = u1 * u1 + u2 * u2;
        if t <= 1.0 && t > 0.0 {
            let f = (-2.0 * t.ln() / t).sqrt();
            let gx = u1 * f;
            let gy = u2 * f;
            sx += gx;
            sy += gy;
            let bin = gx.abs().max(gy.abs()) as usize;
            q[bin.min(9)] += 1;
        }
    }
    (sx, sy, q)
}

/// Run EP with the parallel block loop scheduled by `sched`.
pub fn ep(pool: &ThreadPool, params: EpParams, sched: Schedule) -> EpResult {
    use std::sync::atomic::{AtomicU64, Ordering};

    let blocks = params.blocks();
    let q_tot: Vec<AtomicU64> = (0..10).map(|_| AtomicU64::new(0)).collect();
    let q_ref = &q_tot;

    // sx and sy come from two reduction passes sharing nothing; EP's cost
    // is dominated by deviate generation, so we fold the tally into one
    // pass and reduce sx, capturing sy and q via atomics.
    let sy_bits = AtomicU64::new(0.0_f64.to_bits());
    let sy_ref = &sy_bits;

    let sx = par_sum(pool, 0..blocks, sched, |b| {
        let (bsx, bsy, bq) = block_tally(params, b);
        for (slot, &c) in q_ref.iter().zip(&bq) {
            slot.fetch_add(c, Ordering::Relaxed);
        }
        // Atomic f64 add via CAS (low contention: once per block).
        let mut cur = sy_ref.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + bsy).to_bits();
            match sy_ref.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
        bsx
    });

    let mut q = [0u64; 10];
    for (dst, src) in q.iter_mut().zip(&q_tot) {
        *dst = src.load(std::sync::atomic::Ordering::Relaxed);
    }
    EpResult {
        sx,
        sy: f64::from_bits(sy_bits.load(std::sync::atomic::Ordering::Relaxed)),
        q,
        accepted: q.iter().sum(),
    }
}

/// Sequential reference (block order, deterministic summation).
pub fn ep_sequential(params: EpParams) -> EpResult {
    let (mut sx, mut sy) = (0.0, 0.0);
    let mut q = [0u64; 10];
    for b in 0..params.blocks() {
        let (bsx, bsy, bq) = block_tally(params, b);
        sx += bsx;
        sy += bsy;
        for (dst, c) in q.iter_mut().zip(&bq) {
            *dst += c;
        }
    }
    EpResult { sx, sy, q, accepted: q.iter().sum() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_rate_near_pi_over_4() {
        let params = EpParams::mini();
        let r = ep_sequential(params);
        let total = (params.blocks() * params.pairs_per_block()) as f64;
        let rate = r.accepted as f64 / total;
        assert!((rate - std::f64::consts::FRAC_PI_4).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn gaussian_sums_are_small_relative_to_count() {
        // Mean of a standard Gaussian is 0; |sum| ≈ O(sqrt(count)).
        let r = ep_sequential(EpParams::mini());
        let bound = 20.0 * (r.accepted as f64).sqrt();
        assert!(r.sx.abs() < bound, "sx {}", r.sx);
        assert!(r.sy.abs() < bound, "sy {}", r.sy);
    }

    #[test]
    fn annulus_counts_decay() {
        let r = ep_sequential(EpParams::mini());
        // Nearly all mass is within |X| < 4.
        let head: u64 = r.q[..4].iter().sum();
        assert!(head as f64 / r.accepted as f64 > 0.999);
        assert!(r.q[0] > r.q[1] && r.q[1] > r.q[2]);
    }

    #[test]
    fn parallel_matches_sequential_under_every_schedule() {
        let pool = ThreadPool::new(3);
        let params = EpParams::mini();
        let reference = ep_sequential(params);
        for sched in Schedule::roster(params.blocks(), 3) {
            let r = ep(&pool, params, sched);
            assert_eq!(r.q, reference.q, "{}: annulus counts differ", sched.name());
            assert!(
                (r.sx - reference.sx).abs() < 1e-9,
                "{}: sx {} vs {}",
                sched.name(),
                r.sx,
                reference.sx
            );
            assert!(
                (r.sy - reference.sy).abs() < 1e-9,
                "{}: sy {} vs {}",
                sched.name(),
                r.sy,
                reference.sy
            );
        }
    }

    #[test]
    fn blocks_are_independent_of_partitioning() {
        // Same total pairs, different block size => same tallies.
        let a = ep_sequential(EpParams { m: 16, nk_log: 8 });
        let b = ep_sequential(EpParams { m: 16, nk_log: 10 });
        assert_eq!(a.q, b.q);
        assert!((a.sx - b.sx).abs() < 1e-9);
        assert!((a.sy - b.sy).abs() < 1e-9);
    }
}
