//! FT — 3D fast Fourier transform with time evolution (NAS FT structure).
//!
//! The benchmark solves a 3D diffusion PDE spectrally: transform a random
//! initial state once, then for each time step scale the spectrum by
//! Gaussian decay factors and inverse-transform, recording a checksum of
//! 1024 fixed sample points. Each dimensional FFT pass is a parallel loop
//! over pencils (1D lines), which is exactly the loop structure whose
//! strided, whole-array traversals make FT locality-sensitive.

use std::ops::{Add, Mul, Sub};

use parloop_core::{par_for, par_for_chunks, Schedule};
use parloop_runtime::ThreadPool;

use crate::randdp::{randlc, A as LCG_A, SEED};
use crate::util::UnsafeSlice;

/// A complex number (no external deps).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex { re: self.re * s, im: self.im * s }
    }

    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex { re: self.re + o.re, im: self.im + o.im }
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex { re: self.re - o.re, im: self.im - o.im }
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex { re: self.re * o.re - self.im * o.im, im: self.re * o.im + self.im * o.re }
    }
}

/// Iterative radix-2 Cooley–Tukey FFT, in place. `inverse` flips the
/// twiddle sign (no normalization here; callers scale once).
pub fn fft1d(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = buf[i + k];
                let v = buf[i + k + len / 2] * w;
                buf[i + k] = u + v;
                buf[i + k + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// FT problem parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FtParams {
    pub n1: usize,
    pub n2: usize,
    pub n3: usize,
    /// Time steps (checksums recorded per step).
    pub iters: usize,
}

impl FtParams {
    /// NAS class-S shape: 64³, 6 steps.
    pub fn class_s() -> Self {
        FtParams { n1: 64, n2: 64, n3: 64, iters: 6 }
    }

    /// Miniature instance for fast tests.
    pub fn mini() -> Self {
        FtParams { n1: 16, n2: 16, n3: 16, iters: 3 }
    }

    pub fn total(&self) -> usize {
        self.n1 * self.n2 * self.n3
    }
}

/// A 3D complex grid, flattened as `((k3·n2 + k2)·n1 + k1)`.
pub struct CGrid {
    pub p: FtParams,
    pub data: Vec<Complex>,
}

impl CGrid {
    fn zeros(p: FtParams) -> Self {
        CGrid { p, data: vec![Complex::ZERO; p.total()] }
    }

    #[inline]
    fn idx(&self, k3: usize, k2: usize, k1: usize) -> usize {
        (k3 * self.p.n2 + k2) * self.p.n1 + k1
    }
}

/// FFT along dimension 1 (contiguous pencils), parallel over (k2, k3).
fn fft_dim1(pool: &ThreadPool, sched: Schedule, g: &mut CGrid, inverse: bool) {
    let (n1, n2, n3) = (g.p.n1, g.p.n2, g.p.n3);
    let s = UnsafeSlice::new(&mut g.data);
    par_for(pool, 0..n2 * n3, sched, |p| {
        let base = p * n1;
        let mut pencil = vec![Complex::ZERO; n1];
        for (k1, slot) in pencil.iter_mut().enumerate() {
            *slot = unsafe { s.read(base + k1) };
        }
        fft1d(&mut pencil, inverse);
        for (k1, &v) in pencil.iter().enumerate() {
            unsafe { s.write(base + k1, v) };
        }
    });
}

/// FFT along dimension 2 (stride n1), parallel over (k1, k3).
fn fft_dim2(pool: &ThreadPool, sched: Schedule, g: &mut CGrid, inverse: bool) {
    let (n1, n2, n3) = (g.p.n1, g.p.n2, g.p.n3);
    let s = UnsafeSlice::new(&mut g.data);
    par_for(pool, 0..n1 * n3, sched, |p| {
        let (k3, k1) = (p / n1, p % n1);
        let base = k3 * n2 * n1 + k1;
        let mut pencil = vec![Complex::ZERO; n2];
        for (k2, slot) in pencil.iter_mut().enumerate() {
            *slot = unsafe { s.read(base + k2 * n1) };
        }
        fft1d(&mut pencil, inverse);
        for (k2, &v) in pencil.iter().enumerate() {
            unsafe { s.write(base + k2 * n1, v) };
        }
    });
}

/// FFT along dimension 3 (stride n1·n2), parallel over (k1, k2).
fn fft_dim3(pool: &ThreadPool, sched: Schedule, g: &mut CGrid, inverse: bool) {
    let (n1, n2, n3) = (g.p.n1, g.p.n2, g.p.n3);
    let plane = n1 * n2;
    let s = UnsafeSlice::new(&mut g.data);
    par_for(pool, 0..plane, sched, |base| {
        let mut pencil = vec![Complex::ZERO; n3];
        for (k3, slot) in pencil.iter_mut().enumerate() {
            *slot = unsafe { s.read(base + k3 * plane) };
        }
        fft1d(&mut pencil, inverse);
        for (k3, &v) in pencil.iter().enumerate() {
            unsafe { s.write(base + k3 * plane, v) };
        }
    });
}

/// Full 3D FFT (all three dimensions).
pub fn fft3d(pool: &ThreadPool, sched: Schedule, g: &mut CGrid, inverse: bool) {
    if inverse {
        fft_dim3(pool, sched, g, true);
        fft_dim2(pool, sched, g, true);
        fft_dim1(pool, sched, g, true);
    } else {
        fft_dim1(pool, sched, g, false);
        fft_dim2(pool, sched, g, false);
        fft_dim3(pool, sched, g, false);
    }
}

/// The signed frequency of index `k` on an axis of length `n`.
#[inline]
fn freq(k: usize, n: usize) -> f64 {
    if k <= n / 2 {
        k as f64
    } else {
        k as f64 - n as f64
    }
}

/// FT output: one complex checksum per time step.
#[derive(Debug, Clone, PartialEq)]
pub struct FtResult {
    pub checksums: Vec<Complex>,
}

/// Run the FT benchmark under `sched`.
pub fn ft(pool: &ThreadPool, p: FtParams, sched: Schedule) -> FtResult {
    const ALPHA: f64 = 1e-6;
    let total = p.total();

    // Random initial state (NPB seeds the grid from the NAS LCG).
    let mut u0 = CGrid::zeros(p);
    let mut x = SEED;
    for c in &mut u0.data {
        let re = randlc(&mut x, LCG_A);
        let im = randlc(&mut x, LCG_A);
        *c = Complex::new(re, im);
    }

    // Forward transform once.
    fft3d(pool, sched, &mut u0, false);

    // Per-mode decay factors exp(−4 α π² |k̄|²).
    let mut decay = vec![0.0f64; total];
    {
        let d = UnsafeSlice::new(&mut decay);
        par_for(pool, 0..p.n3, sched, |k3| {
            let f3 = freq(k3, p.n3);
            for k2 in 0..p.n2 {
                let f2 = freq(k2, p.n2);
                for k1 in 0..p.n1 {
                    let f1 = freq(k1, p.n1);
                    let ksq = f1 * f1 + f2 * f2 + f3 * f3;
                    let idx = (k3 * p.n2 + k2) * p.n1 + k1;
                    unsafe {
                        d.write(idx, (-4.0 * ALPHA * std::f64::consts::PI.powi(2) * ksq).exp())
                    };
                }
            }
        });
    }

    let mut checksums = Vec::with_capacity(p.iters);
    let mut work = CGrid::zeros(p);
    let inv_total = 1.0 / total as f64;

    for step in 1..=p.iters {
        // work = u0 ⊙ decay^step, elementwise (parallel).
        {
            let w = UnsafeSlice::new(&mut work.data);
            let u0_ref = &u0;
            let decay_ref = &decay;
            par_for_chunks(pool, 0..total, sched, |chunk| {
                for i in chunk {
                    let f = decay_ref[i].powi(step as i32);
                    unsafe { w.write(i, u0_ref.data[i].scale(f)) };
                }
            });
        }
        // Inverse transform back to physical space.
        fft3d(pool, sched, &mut work, true);

        // Checksum over 1024 fixed sample points (sequential: bitwise
        // deterministic across schedulers).
        let mut sum = Complex::ZERO;
        for j in 1..=1024usize {
            let q = (5 * j) % p.n1;
            let r = (3 * j) % p.n2;
            let s_ = j % p.n3;
            sum = sum + work.data[work.idx(s_, r, q)].scale(inv_total);
        }
        checksums.push(sum.scale(1.0 / 1024.0));
    }

    FtResult { checksums }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft1d_of_impulse_is_flat() {
        let mut buf = vec![Complex::ZERO; 8];
        buf[0] = Complex::new(1.0, 0.0);
        fft1d(&mut buf, false);
        for c in &buf {
            assert!((c.re - 1.0).abs() < 1e-12 && c.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft1d_roundtrip_identity() {
        let mut x = SEED;
        let orig: Vec<Complex> =
            (0..64).map(|_| Complex::new(randlc(&mut x, LCG_A), randlc(&mut x, LCG_A))).collect();
        let mut buf = orig.clone();
        fft1d(&mut buf, false);
        fft1d(&mut buf, true);
        for (a, b) in buf.iter().zip(&orig) {
            let d = (*a - *b).scale(1.0 / 64.0);
            let recon = a.scale(1.0 / 64.0);
            let want = *b;
            assert!(
                (recon.re - want.re).abs() < 1e-10 && (recon.im - want.im).abs() < 1e-10,
                "roundtrip error {d:?}"
            );
        }
    }

    #[test]
    fn parseval_holds_for_fft1d() {
        let mut x = 7.0;
        let sig: Vec<Complex> =
            (0..32).map(|_| Complex::new(randlc(&mut x, LCG_A) - 0.5, 0.0)).collect();
        let time_energy: f64 = sig.iter().map(|c| c.norm_sqr()).sum();
        let mut buf = sig;
        fft1d(&mut buf, false);
        let freq_energy: f64 = buf.iter().map(|c| c.norm_sqr()).sum::<f64>() / 32.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn fft3d_roundtrip_identity() {
        let pool = ThreadPool::new(2);
        let p = FtParams { n1: 8, n2: 8, n3: 8, iters: 1 };
        let mut g = CGrid::zeros(p);
        let mut x = SEED;
        for c in &mut g.data {
            *c = Complex::new(randlc(&mut x, LCG_A), randlc(&mut x, LCG_A));
        }
        let orig = g.data.clone();
        fft3d(&pool, Schedule::hybrid(), &mut g, false);
        fft3d(&pool, Schedule::hybrid(), &mut g, true);
        let scale = 1.0 / p.total() as f64;
        for (a, b) in g.data.iter().zip(&orig) {
            assert!((a.re * scale - b.re).abs() < 1e-10);
            assert!((a.im * scale - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn checksums_identical_across_schedules() {
        let pool = ThreadPool::new(3);
        let p = FtParams::mini();
        let reference = ft(&pool, p, Schedule::omp_static());
        for sched in Schedule::roster(p.total(), 3) {
            let r = ft(&pool, p, sched);
            for (i, (a, b)) in r.checksums.iter().zip(&reference.checksums).enumerate() {
                assert!(
                    (a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9,
                    "{} step {i}: {a:?} vs {b:?}",
                    sched.name()
                );
            }
        }
    }

    #[test]
    fn non_cubic_grids_roundtrip() {
        let pool = ThreadPool::new(2);
        let p = FtParams { n1: 16, n2: 8, n3: 4, iters: 1 };
        let mut g = CGrid::zeros(p);
        let mut x = SEED;
        for c in &mut g.data {
            *c = Complex::new(randlc(&mut x, LCG_A), randlc(&mut x, LCG_A));
        }
        let orig = g.data.clone();
        fft3d(&pool, Schedule::vanilla(), &mut g, false);
        fft3d(&pool, Schedule::vanilla(), &mut g, true);
        let scale = 1.0 / p.total() as f64;
        for (a, b) in g.data.iter().zip(&orig) {
            assert!((a.re * scale - b.re).abs() < 1e-10);
            assert!((a.im * scale - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn non_cubic_ft_runs_and_agrees() {
        let pool = ThreadPool::new(2);
        let p = FtParams { n1: 32, n2: 8, n3: 16, iters: 2 };
        let a = ft(&pool, p, Schedule::hybrid());
        let b = ft(&pool, p, Schedule::omp_static());
        for (x, y) in a.checksums.iter().zip(&b.checksums) {
            assert!((x.re - y.re).abs() < 1e-9 && (x.im - y.im).abs() < 1e-9);
        }
    }

    #[test]
    fn evolution_decays_high_frequencies() {
        let pool = ThreadPool::new(2);
        let p = FtParams::mini();
        let r = ft(&pool, p, Schedule::hybrid());
        assert_eq!(r.checksums.len(), p.iters);
        // All checksums finite and nonzero.
        for c in &r.checksums {
            assert!(c.re.is_finite() && c.im.is_finite());
            assert!(c.norm_sqr() > 0.0);
        }
    }
}
