//! The NAS double-precision linear congruential generator (`randdp`).
//!
//! `x_{k+1} = a · x_k mod 2^46` with `a = 5^13`, computed exactly in
//! double precision by splitting operands into 23-bit halves (the NPB
//! reference scheme). The generator supports O(log n) jump-ahead via
//! [`power_mod`], which is what lets EP's pair blocks be generated
//! independently in parallel.

/// 2^-23 and friends.
const R23: f64 = 0.5
    * 0.5
    * 0.5
    * 0.5
    * 0.5
    * 0.5
    * 0.5
    * 0.5
    * 0.5
    * 0.5
    * 0.5
    * 0.5
    * 0.5
    * 0.5
    * 0.5
    * 0.5
    * 0.5
    * 0.5
    * 0.5
    * 0.5
    * 0.5
    * 0.5
    * 0.5;
const T23: f64 = 8_388_608.0; // 2^23
const R46: f64 = R23 * R23;
const T46: f64 = T23 * T23;

/// The NPB multiplier `a = 5^13`.
pub const A: f64 = 1_220_703_125.0;

/// Default NPB seed.
pub const SEED: f64 = 271_828_183.0;

/// Advance `x` one LCG step with multiplier `a`; returns the uniform
/// deviate `x · 2^-46` in `(0, 1)`.
pub fn randlc(x: &mut f64, a: f64) -> f64 {
    // Break a and x into 23-bit halves: a = 2^23·a1 + a2, x = 2^23·x1 + x2.
    let t1 = R23 * a;
    let a1 = t1.trunc();
    let a2 = a - T23 * a1;

    let t1 = R23 * *x;
    let x1 = t1.trunc();
    let x2 = *x - T23 * x1;

    // t1 = a1·x2 + a2·x1 (mod 2^23); then z = t1 (mod 2^23);
    // t3 = 2^23·z + a2·x2 (mod 2^46).
    let t1 = a1 * x2 + a2 * x1;
    let t2 = (R23 * t1).trunc();
    let z = t1 - T23 * t2;
    let t3 = T23 * z + a2 * x2;
    let t4 = (R46 * t3).trunc();
    *x = t3 - T46 * t4;

    R46 * *x
}

/// Fill `out` with uniform deviates, advancing `x` by `out.len()` steps.
pub fn vranlc(x: &mut f64, a: f64, out: &mut [f64]) {
    for slot in out {
        *slot = randlc(x, a);
    }
}

/// Compute `a^n mod 2^46` in the LCG's arithmetic (square-and-multiply) —
/// the jump-ahead multiplier for skipping `n` steps at once.
pub fn power_mod(a: f64, mut n: u64) -> f64 {
    let mut result = 1.0_f64;
    let mut base = a;
    while n > 0 {
        if n & 1 == 1 {
            // result = result * base mod 2^46: randlc(x, a) sets x = a·x.
            let mut x = result;
            randlc(&mut x, base);
            result = x;
        }
        let mut sq = base;
        randlc(&mut sq, base);
        base = sq;
        n >>= 1;
    }
    result
}

/// Seed the generator as if `steps` values had already been drawn from
/// `seed` with multiplier [`A`].
pub fn seed_after(seed: f64, steps: u64) -> f64 {
    let mult = power_mod(A, steps);
    let mut x = seed;
    randlc(&mut x, mult);
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviates_in_unit_interval() {
        let mut x = SEED;
        for _ in 0..10_000 {
            let r = randlc(&mut x, A);
            assert!(r > 0.0 && r < 1.0, "deviate {r} out of range");
        }
    }

    #[test]
    fn state_stays_integral_and_bounded() {
        let mut x = SEED;
        for _ in 0..1000 {
            randlc(&mut x, A);
            assert_eq!(x, x.trunc(), "state must remain an integer");
            assert!(x < T46, "state {x} exceeds 2^46");
            assert!(x >= 0.0);
        }
    }

    #[test]
    fn jump_ahead_matches_stepping() {
        for steps in [1u64, 2, 7, 100, 12345] {
            let mut x = SEED;
            for _ in 0..steps {
                randlc(&mut x, A);
            }
            let jumped = seed_after(SEED, steps);
            assert_eq!(x, jumped, "jump-ahead of {steps} diverged");
        }
    }

    #[test]
    fn vranlc_equals_repeated_randlc() {
        let mut x1 = SEED;
        let mut buf = vec![0.0; 100];
        vranlc(&mut x1, A, &mut buf);
        let mut x2 = SEED;
        for (i, &v) in buf.iter().enumerate() {
            let r = randlc(&mut x2, A);
            assert_eq!(r, v, "index {i}");
        }
        assert_eq!(x1, x2);
    }

    #[test]
    fn power_mod_identity_and_one_step() {
        assert_eq!(power_mod(A, 0), 1.0);
        assert_eq!(power_mod(A, 1), A);
    }

    #[test]
    fn mean_is_about_half() {
        let mut x = SEED;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| randlc(&mut x, A)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
