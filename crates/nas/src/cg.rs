//! CG — conjugate gradient with a sparse, symmetric positive-definite
//! matrix.
//!
//! Structure follows NPB CG: an outer loop of `niter` steps, each running
//! 25 CG iterations to approximately solve `A z = x`, then computing
//! `ζ = shift + 1 / (x·z)` and renormalizing `x ← z/‖z‖`. The parallel
//! loops are the sparse mat-vec (rows have irregular lengths — CG's mild
//! load imbalance) and the vector reductions/updates.
//!
//! **Substitution note (documented in DESIGN.md):** NPB's `makea` matrix
//! generator is replaced by a synthetic generator producing a random
//! sparse symmetric diagonally-dominant (hence SPD) matrix with the same
//! knobs (`n`, nonzeros per row). The paper's scheduling results depend on
//! the loop structure and irregularity, not on `makea`'s exact spectrum.

use parloop_core::{par_for_chunks, Schedule};
use parloop_runtime::ThreadPool;

use crate::randdp::{randlc, A as LCG_A, SEED};
use crate::util::{par_sum, UnsafeSlice};

/// How off-diagonal nonzeros are distributed across rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowProfile {
    /// Every row targets the same `nonzer` off-diagonals.
    Uniform,
    /// Row densities vary ~5x (geometric-flavored, like NPB `makea`'s
    /// uneven rows) — the source of CG's mild load imbalance.
    Geometric,
}

/// CG problem parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgParams {
    /// Matrix dimension.
    pub n: usize,
    /// Target off-diagonal nonzeros per row (before symmetrization).
    pub nonzer: usize,
    /// Outer iterations.
    pub niter: usize,
    /// Inner CG iterations per outer step (NPB uses 25).
    pub cg_iters: usize,
    /// Eigenvalue shift added to ζ.
    pub shift: f64,
    /// Row-density profile.
    pub rows: RowProfile,
}

impl CgParams {
    /// NAS class-S-shaped instance (n = 1400, nonzer = 7, 15 outer steps).
    pub fn class_s() -> Self {
        CgParams {
            n: 1400,
            nonzer: 7,
            niter: 15,
            cg_iters: 25,
            shift: 10.0,
            rows: RowProfile::Geometric,
        }
    }

    /// A miniature instance for fast tests.
    pub fn mini() -> Self {
        CgParams {
            n: 256,
            nonzer: 5,
            niter: 4,
            cg_iters: 15,
            shift: 10.0,
            rows: RowProfile::Uniform,
        }
    }

    /// The same instance with the given row profile.
    pub fn with_rows(mut self, rows: RowProfile) -> Self {
        self.rows = rows;
        self
    }
}

/// Compressed-sparse-row matrix.
#[derive(Debug, Clone)]
pub struct SparseMatrix {
    pub n: usize,
    pub row_ptr: Vec<usize>,
    pub col: Vec<usize>,
    pub val: Vec<f64>,
}

impl SparseMatrix {
    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.val.len()
    }

    /// `y[i] = Σ_j A[i,j]·x[j]` for one row. `inline(always)` so the
    /// gather loop fuses into each scheduler chunk body (the mat-vec is
    /// CG's hot leaf; the indirect `x[col[k]]` gather caps vectorization,
    /// but keeping the loop call-free still matters at small grains).
    #[inline(always)]
    pub fn row_dot(&self, i: usize, x: &[f64]) -> f64 {
        let mut s = 0.0;
        for k in self.row_ptr[i]..self.row_ptr[i + 1] {
            s += self.val[k] * x[self.col[k]];
        }
        s
    }
}

/// Stride-1 leaf of the CG vector updates, shared by the `z`/`r` step:
/// `acc[i] += a·v[i]` over one scheduler chunk. Written on slices (not
/// per-index `UnsafeSlice` calls) so LLVM sees a dense autovectorizable
/// loop — the same shape `parloop_micro::kernels::axpy` verifies under
/// the `--asm` disassembly check.
#[inline(always)]
fn axpy_leaf(a: f64, v: &[f64], acc: &mut [f64]) {
    for (y, x) in acc.iter_mut().zip(v) {
        *y += a * x;
    }
}

/// Stride-1 leaf of the direction update: `p[i] = r[i] + beta·p[i]`.
#[inline(always)]
fn xpby_leaf(r: &[f64], beta: f64, p: &mut [f64]) {
    for (pi, ri) in p.iter_mut().zip(r) {
        *pi = ri + beta * *pi;
    }
}

/// Stride-1 leaf of the renormalization: `dst[i] = src[i] / denom`.
#[inline(always)]
fn scale_leaf(src: &[f64], denom: f64, dst: &mut [f64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = s / denom;
    }
}

/// Build a random sparse symmetric diagonally-dominant matrix.
#[allow(clippy::needless_range_loop)] // rows[i] and rows[j] both mutate
pub fn make_matrix(params: CgParams) -> SparseMatrix {
    let n = params.n;
    let mut x = SEED;
    // Collect symmetric off-diagonal triplets into per-row maps.
    let mut rows: Vec<std::collections::BTreeMap<usize, f64>> =
        (0..n).map(|_| std::collections::BTreeMap::new()).collect();
    for i in 0..n {
        let row_nonzer = match params.rows {
            RowProfile::Uniform => params.nonzer,
            RowProfile::Geometric => {
                // Densities spanning ~[nonzer/2, 5·nonzer/2], skewed low.
                let u = randlc(&mut x, LCG_A);
                let scale = 0.5 + 2.0 * u * u;
                ((params.nonzer as f64 * scale).round() as usize).max(1)
            }
        };
        for _ in 0..row_nonzer {
            let j = (randlc(&mut x, LCG_A) * n as f64) as usize % n;
            if j == i {
                continue;
            }
            let v = 2.0 * randlc(&mut x, LCG_A) - 1.0; // in (-1, 1)
                                                       // Indexed access on purpose: both rows[i] and rows[j] mutate.
            *rows[i].entry(j).or_insert(0.0) += v;
            *rows[j].entry(i).or_insert(0.0) += v;
        }
    }
    // Diagonal dominance: d_i = 1 + Σ_j |a_ij| ensures SPD.
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col = Vec::new();
    let mut val = Vec::new();
    row_ptr.push(0);
    for i in 0..n {
        let dominance: f64 = 1.0 + rows[i].values().map(|v| v.abs()).sum::<f64>();
        let mut inserted_diag = false;
        for (&j, &v) in rows[i].iter() {
            if j > i && !inserted_diag {
                col.push(i);
                val.push(dominance);
                inserted_diag = true;
            }
            col.push(j);
            val.push(v);
        }
        if !inserted_diag {
            col.push(i);
            val.push(dominance);
        }
        row_ptr.push(col.len());
    }
    SparseMatrix { n, row_ptr, col, val }
}

/// One CG solve `A z ≈ x` (`cg_iters` steps); returns `(z, ‖r‖)`.
fn conj_grad(
    pool: &ThreadPool,
    a: &SparseMatrix,
    x: &[f64],
    cg_iters: usize,
    sched: Schedule,
) -> (Vec<f64>, f64) {
    let n = a.n;
    let mut z = vec![0.0; n];
    let mut r = x.to_vec();
    let mut p = x.to_vec();
    let mut q = vec![0.0; n];
    let mut rho = par_sum(pool, 0..n, sched, |i| r[i] * r[i]);

    for _ in 0..cg_iters {
        {
            let qs = UnsafeSlice::new(&mut q);
            let p_ref = &p;
            par_for_chunks(pool, 0..n, sched, |chunk| {
                for i in chunk {
                    unsafe { qs.write(i, a.row_dot(i, p_ref)) };
                }
            });
        }
        let pq = par_sum(pool, 0..n, sched, |i| p[i] * q[i]);
        let alpha = rho / pq;
        {
            let zs = UnsafeSlice::new(&mut z);
            let rs = UnsafeSlice::new(&mut r);
            let (p_ref, q_ref) = (&p, &q);
            par_for_chunks(pool, 0..n, sched, |chunk| unsafe {
                axpy_leaf(alpha, &p_ref[chunk.clone()], zs.slice_mut(chunk.clone()));
                axpy_leaf(-alpha, &q_ref[chunk.clone()], rs.slice_mut(chunk));
            });
        }
        let rho_new = par_sum(pool, 0..n, sched, |i| r[i] * r[i]);
        let beta = rho_new / rho;
        rho = rho_new;
        {
            let ps = UnsafeSlice::new(&mut p);
            let r_ref = &r;
            par_for_chunks(pool, 0..n, sched, |chunk| unsafe {
                xpby_leaf(&r_ref[chunk.clone()], beta, ps.slice_mut(chunk));
            });
        }
    }

    // Residual norm ‖x − A z‖.
    let z_ref = &z;
    let rnorm = par_sum(pool, 0..n, sched, |i| {
        let d = x[i] - a.row_dot(i, z_ref);
        d * d
    })
    .sqrt();
    (z, rnorm)
}

/// CG benchmark output.
#[derive(Debug, Clone, PartialEq)]
pub struct CgResult {
    /// Final ζ estimate.
    pub zeta: f64,
    /// Residual norm of the last solve.
    pub rnorm: f64,
}

/// Run the full CG benchmark under `sched`.
pub fn cg(pool: &ThreadPool, a: &SparseMatrix, params: CgParams, sched: Schedule) -> CgResult {
    let n = a.n;
    let mut x = vec![1.0; n];
    let mut zeta = 0.0;
    let mut rnorm = 0.0;
    for _ in 0..params.niter {
        let (z, rn) = conj_grad(pool, a, &x, params.cg_iters, sched);
        rnorm = rn;
        let xz = par_sum(pool, 0..n, sched, |i| x[i] * z[i]);
        zeta = params.shift + 1.0 / xz;
        let znorm = par_sum(pool, 0..n, sched, |i| z[i] * z[i]).sqrt();
        let zs = UnsafeSlice::new(&mut x);
        let z_ref = &z;
        par_for_chunks(pool, 0..n, sched, |chunk| unsafe {
            scale_leaf(&z_ref[chunk.clone()], znorm, zs.slice_mut(chunk));
        });
    }
    CgResult { zeta, rnorm }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_symmetric() {
        let a = make_matrix(CgParams::mini());
        // Collect (i,j,v) and check transpose presence.
        let mut map = std::collections::HashMap::new();
        for i in 0..a.n {
            for k in a.row_ptr[i]..a.row_ptr[i + 1] {
                map.insert((i, a.col[k]), a.val[k]);
            }
        }
        for (&(i, j), &v) in &map {
            let vt = map.get(&(j, i)).copied().unwrap_or(0.0);
            assert!((v - vt).abs() < 1e-12, "A[{i},{j}]={v} but A[{j},{i}]={vt}");
        }
    }

    #[test]
    fn matrix_is_positive_definite_on_samples() {
        let a = make_matrix(CgParams::mini());
        let mut x = 42.0_f64;
        for _ in 0..5 {
            let v: Vec<f64> = (0..a.n).map(|_| 2.0 * randlc(&mut x, LCG_A) - 1.0).collect();
            let vav: f64 = (0..a.n).map(|i| v[i] * a.row_dot(i, &v)).sum();
            assert!(vav > 0.0, "v·Av = {vav} not positive");
        }
    }

    #[test]
    fn cg_converges() {
        let pool = ThreadPool::new(2);
        let params = CgParams::mini();
        let a = make_matrix(params);
        let r = cg(&pool, &a, params, Schedule::hybrid());
        // Diagonally dominant matrices are well-conditioned: the residual
        // after 15 CG steps must be tiny relative to ‖x‖ = sqrt(n) = 16.
        assert!(r.rnorm < 1e-5, "rnorm {}", r.rnorm);
        assert!(r.zeta > params.shift, "zeta {} not above shift", r.zeta);
        assert!(r.zeta.is_finite());
    }

    #[test]
    fn all_schedules_agree_on_zeta() {
        let pool = ThreadPool::new(3);
        let params = CgParams::mini();
        let a = make_matrix(params);
        let reference = cg(&pool, &a, params, Schedule::omp_static());
        for sched in Schedule::roster(params.n, 3) {
            let r = cg(&pool, &a, params, sched);
            let rel = ((r.zeta - reference.zeta) / reference.zeta).abs();
            assert!(rel < 1e-10, "{}: zeta {} vs {}", sched.name(), r.zeta, reference.zeta);
        }
    }

    #[test]
    fn geometric_rows_are_irregular_but_still_spd() {
        let params = CgParams::mini().with_rows(RowProfile::Geometric);
        let a = make_matrix(params);
        // Row lengths must actually vary.
        let lens: Vec<usize> = (0..a.n).map(|i| a.row_ptr[i + 1] - a.row_ptr[i]).collect();
        let min = lens.iter().min().unwrap();
        let max = lens.iter().max().unwrap();
        assert!(max > &(min + 3), "rows too uniform: min {min} max {max}");
        // Still SPD (diagonal dominance holds regardless of profile).
        let mut x = 7.0_f64;
        let v: Vec<f64> = (0..a.n).map(|_| 2.0 * randlc(&mut x, LCG_A) - 1.0).collect();
        let vav: f64 = (0..a.n).map(|i| v[i] * a.row_dot(i, &v)).sum();
        assert!(vav > 0.0);
    }

    #[test]
    fn geometric_cg_still_converges_under_all_schedules() {
        let pool = ThreadPool::new(3);
        let params = CgParams::mini().with_rows(RowProfile::Geometric);
        let a = make_matrix(params);
        let reference = cg(&pool, &a, params, Schedule::omp_static());
        for sched in [Schedule::hybrid(), Schedule::vanilla()] {
            let r = cg(&pool, &a, params, sched);
            assert!(((r.zeta - reference.zeta) / reference.zeta).abs() < 1e-10);
            assert!(r.rnorm < 1e-5);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn row_dot_matches_dense_product() {
        let a = make_matrix(CgParams {
            n: 32,
            nonzer: 3,
            niter: 1,
            cg_iters: 1,
            shift: 0.0,
            rows: RowProfile::Uniform,
        });
        let x: Vec<f64> = (0..32).map(|i| i as f64 * 0.5).collect();
        // Densify.
        let mut dense = vec![vec![0.0; 32]; 32];
        for i in 0..32 {
            for k in a.row_ptr[i]..a.row_ptr[i + 1] {
                dense[i][a.col[k]] += a.val[k];
            }
        }
        for i in 0..32 {
            let want: f64 = (0..32).map(|j| dense[i][j] * x[j]).sum();
            assert!((a.row_dot(i, &x) - want).abs() < 1e-12);
        }
    }
}
