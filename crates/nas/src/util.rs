//! Shared helpers for the NAS kernels: disjoint-write slices and parallel
//! reductions, usable under *any* [`Schedule`].

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::ops::Range;

use parloop_core::{par_for_chunks, Schedule};
use parloop_runtime::{current_worker_index, CachePadded, ThreadPool};

/// A shared view of a mutable slice for parallel loops whose iterations
/// write *disjoint* index sets (stencils over planes, per-row outputs…).
///
/// # Safety contract
/// Callers must guarantee that no two concurrent iterations touch the same
/// index. Every scheduler in this workspace executes each loop index
/// exactly once (Theorem 3 for the hybrid scheme; trivially for the
/// others), so indexing by loop-owned positions is race-free.
pub struct UnsafeSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for UnsafeSlice<'_, T> {}
unsafe impl<T: Send> Sync for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    pub fn new(slice: &'a mut [T]) -> Self {
        UnsafeSlice { ptr: slice.as_mut_ptr(), len: slice.len(), _marker: PhantomData }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Write `value` at `i`.
    ///
    /// # Safety
    /// `i < len`, and no concurrent access to index `i`.
    #[inline]
    pub unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        *self.ptr.add(i) = value;
    }

    /// Read the value at `i` (for `T: Copy`).
    ///
    /// # Safety
    /// `i < len`, and no concurrent *write* to index `i`.
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.len);
        *self.ptr.add(i)
    }

    /// Get a raw mutable pointer to index `i`.
    ///
    /// # Safety
    /// `i < len`; aliasing rules are the caller's responsibility.
    #[inline]
    pub unsafe fn get_mut(&self, i: usize) -> *mut T {
        debug_assert!(i < self.len);
        self.ptr.add(i)
    }

    /// Reborrow the chunk `range` as a plain mutable slice, so chunk
    /// bodies can run dense stride-1 leaf kernels over it (per-index
    /// `write` calls hide the loop shape from the autovectorizer).
    ///
    /// # Safety
    /// `range` in bounds, and no concurrent access to any index in it —
    /// the scheduler's disjoint-chunk guarantee (see the type docs).
    #[inline]
    #[allow(clippy::mut_from_ref)] // disjoint-chunk contract, as with `write`
    pub unsafe fn slice_mut(&self, range: Range<usize>) -> &'a mut [T] {
        debug_assert!(range.start <= range.end && range.end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.len())
    }
}

/// Per-worker accumulator cells (cache-line padded). Each pool worker only
/// ever touches its own slot, so plain (non-atomic) accumulation is safe.
struct WorkerAccum {
    slots: Vec<CachePadded<UnsafeCell<f64>>>,
}

unsafe impl Sync for WorkerAccum {}

impl WorkerAccum {
    fn new(p: usize) -> Self {
        WorkerAccum { slots: (0..p).map(|_| CachePadded::new(UnsafeCell::new(0.0))).collect() }
    }

    #[inline]
    fn add(&self, w: usize, v: f64) {
        // SAFETY: slot `w` is only accessed by pool worker `w`, which is a
        // single OS thread.
        unsafe { *self.slots[w].get() += v }
    }

    fn total(&self) -> f64 {
        self.slots.iter().map(|s| unsafe { *s.get() }).sum()
    }
}

/// Parallel sum-reduction: `Σ f(i)` for `i` in `range`, scheduled by
/// `sched`. Accumulation is per-worker with one worker lookup per *chunk*
/// (the chunk folds into a local register first), so there is no atomic
/// contention; the final combine is sequential.
///
/// Floating-point note: the summation *order* depends on the schedule and
/// on stealing, so results across schedulers agree only to rounding —
/// compare with a tolerance.
pub fn par_sum<F>(pool: &ThreadPool, range: Range<usize>, sched: Schedule, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    let acc = WorkerAccum::new(pool.num_workers());
    par_for_chunks(pool, range, sched, |chunk: Range<usize>| {
        let w = current_worker_index().expect("loop bodies run on pool workers");
        let mut partial = 0.0;
        for i in chunk {
            partial += f(i);
        }
        acc.add(w, partial);
    });
    acc.total()
}

/// Parallel max-reduction over `|f(i)|` (used by verification norms).
/// The chunk maximum is computed locally; the shared atomic is touched
/// once per chunk.
pub fn par_max_abs<F>(pool: &ThreadPool, range: Range<usize>, sched: Schedule, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    use std::sync::atomic::{AtomicU64, Ordering};
    let best = AtomicU64::new(0);
    par_for_chunks(pool, range, sched, |chunk: Range<usize>| {
        let mut local = 0.0f64;
        for i in chunk {
            local = local.max(f(i).abs());
        }
        let mut cur = best.load(Ordering::Relaxed);
        while local > f64::from_bits(cur) {
            match best.compare_exchange_weak(
                cur,
                local.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
    });
    f64::from_bits(best.load(std::sync::atomic::Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parloop_core::par_for;

    #[test]
    fn unsafe_slice_disjoint_writes() {
        let pool = ThreadPool::new(4);
        let mut v = vec![0u64; 1000];
        {
            let s = UnsafeSlice::new(&mut v);
            par_for(&pool, 0..1000, Schedule::hybrid(), |i| unsafe {
                s.write(i, (i * 3) as u64);
            });
        }
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i * 3) as u64);
        }
    }

    #[test]
    fn par_sum_matches_sequential() {
        let pool = ThreadPool::new(3);
        let expect: f64 = (0..10_000).map(|i| (i as f64).sqrt()).sum();
        for sched in Schedule::roster(10_000, 3) {
            let got = par_sum(&pool, 0..10_000, sched, |i| (i as f64).sqrt());
            let rel = ((got - expect) / expect).abs();
            assert!(rel < 1e-12, "{}: rel err {rel}", sched.name());
        }
    }

    #[test]
    fn par_max_abs_finds_peak() {
        let pool = ThreadPool::new(2);
        let got = par_max_abs(&pool, 0..1000, Schedule::vanilla(), |i| {
            if i == 617 {
                -42.5
            } else {
                (i % 10) as f64
            }
        });
        assert_eq!(got, 42.5);
    }

    #[test]
    fn par_sum_empty_range_is_zero() {
        let pool = ThreadPool::new(2);
        assert_eq!(par_sum(&pool, 5..5, Schedule::hybrid(), |_| 1.0), 0.0);
    }
}
