//! `parloop` — facade crate for the hybrid-loop-scheduling reproduction.
//!
//! Re-exports the public API of every sub-crate so that examples, tests and
//! downstream users can depend on a single crate:
//!
//! * [`runtime`] — the work-stealing fork-join runtime (pools, `join`, `scope`);
//! * [`core`] — loop schedulers: the paper's hybrid scheme plus the static,
//!   work-sharing dynamic, guided and work-stealing dynamic baselines;
//! * [`topo`] — machine topology, cache geometry and latency models;
//! * [`simcache`] — the software memory-hierarchy simulator;
//! * [`sim`] — the virtual-time scheduler simulator used to regenerate the
//!   paper's figures on a modeled 32-core, 4-socket machine;
//! * [`nas`] — Rust ports of the five NAS parallel benchmark kernels;
//! * [`micro`] — the paper's balanced/unbalanced iterative microbenchmarks;
//! * [`tenant`] — the multi-tenant layer: a process-global lazily-built
//!   registry, `Tenant` handles carrying a QoS class / fair-share weight /
//!   deadline, and bounded admission over the shared fleet;
//! * [`trace`] — the observability layer: per-worker lock-free event rings,
//!   scheduler metrics (steal rate, claim-failure histograms, affinity
//!   retention) and Chrome-trace/CSV export;
//! * [`chaos`] — deterministic fault injection: seeded injectors that force
//!   steal failures, claim losses, delays and panics at named runtime
//!   sites, used to prove the scheduler's robustness properties under
//!   adversarial interleavings.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

pub use parloop_chaos as chaos;
pub use parloop_core as core;
pub use parloop_micro as micro;
pub use parloop_nas as nas;
pub use parloop_runtime as runtime;
pub use parloop_sim as sim;
pub use parloop_simcache as simcache;
pub use parloop_tenant as tenant;
pub use parloop_topo as topo;
pub use parloop_trace as trace;

pub use parloop_chaos::{FaultAction, FaultInjector, NoopInjector, PlannedInjector, Site};
pub use parloop_core::{
    par_for, par_for_chunks, par_for_chunks_policy, par_for_dyn, par_for_tracked, try_hybrid_for,
    try_par_for_chunks, HybridError, HybridStats, Schedule, SplitPolicy,
};
pub use parloop_runtime::{
    join, scope, CancelToken, Cancelled, PoolHealth, QosClass, StallReport, ThreadPool,
    ThreadPoolBuilder, WorkerState,
};
pub use parloop_tenant::{
    global_pool, init_global, teardown_global, GlobalError, RetryPolicy, Tenant, TenantBuilder,
    TenantError, TenantStats,
};
pub use parloop_trace::{NoopSink, RingTraceSink, TraceEvent, TraceSink, WorkerStats};
